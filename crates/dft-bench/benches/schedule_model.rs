//! Criterion benchmarks of the performance-model machinery itself (the
//! schedule evaluation must stay cheap enough for interactive sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use dft_hpc::event::{pipelined_blocks, Stream, Timeline};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, DftSystemSpec, SolverOptions};
use std::time::Duration;

fn bench_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_model");
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let sys = DftSystemSpec::new("TwinDislocMgY(C)", 74_164.0, 154_781.0, 1.7e9, 4, true, 8);
    let cluster = ClusterSpec::new(MachineModel::frontier(), 8000);
    let opts = SolverOptions::default();
    g.bench_function("scf_step_twindisloc_c", |b| {
        b.iter(|| scf_step(&sys, &opts, &cluster));
    });
    g.bench_function("timeline_10k_tasks", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            let mut prev = None;
            for i in 0..10_000 {
                let deps: Vec<_> = prev.into_iter().collect();
                let t = tl.add(
                    if i % 2 == 0 {
                        Stream::Compute
                    } else {
                        Stream::Comm
                    },
                    1e-3,
                    &deps,
                );
                prev = Some(t);
            }
            tl.makespan()
        });
    });
    g.bench_function("pipelined_blocks_1000", |b| {
        b.iter(|| pipelined_blocks(1000, 1e-3, 8e-4, true));
    });
    g.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
