//! The paper's benchmark systems (Sec. 6.2) as performance-schedule specs.
//!
//! FE DoF counts follow the paper where stated (YbCd: 75,069,290;
//! TwinDislocMgY(B)/(C): ~1.7e9) and scale with atom count otherwise.
//! States per k-point derive from the electron counts through the
//! Table-3-inferred ratio (see `dft_hpc::schedule::STATES_PER_ELECTRON`).

use dft_hpc::schedule::DftSystemSpec;

/// YbCd quasicrystal nanoparticle: Yb295Cd1648, 1,943 atoms, 40,040 e-,
/// 75,069,290 FE DoF, Γ-only (isolated nanoparticle), p=7.
pub fn ybcd_quasicrystal() -> DftSystemSpec {
    DftSystemSpec::new(
        "YbCd quasicrystal",
        1943.0,
        40_040.0,
        75_069_290.0,
        1,
        false,
        7,
    )
}

/// DislocMgY: pyramidal II <c+a> screw dislocation + Y solute,
/// (6,016 atoms, 12,041 e-) x 2 k-points, ~96e6 FE DoF, p=8.
pub fn disloc_mg_y() -> DftSystemSpec {
    DftSystemSpec::new("DislocMgY", 6016.0, 12_041.0, 96.0e6, 2, true, 8)
}

/// TwinDislocMgY(A): (36,344 atoms, 75,667 e-) x 4 k-points — 302,668 e-
/// in the supercell.
pub fn twin_disloc_mg_y_a() -> DftSystemSpec {
    DftSystemSpec::new(
        "TwinDislocMgY(A)",
        36_344.0,
        75_667.0,
        1.7e9 * 36_344.0 / 74_164.0,
        4,
        true,
        8,
    )
}

/// TwinDislocMgY(B): (74,164 atoms, 154,781 e-) x 3 k-points — 464,343 e-.
pub fn twin_disloc_mg_y_b() -> DftSystemSpec {
    DftSystemSpec::new("TwinDislocMgY(B)", 74_164.0, 154_781.0, 1.7e9, 3, true, 8)
}

/// TwinDislocMgY(C): (74,164 atoms, 154,781 e-) x 4 k-points — 619,124 e-
/// in the supercell, M = 1.7e9 DoF: the paper's largest system.
pub fn twin_disloc_mg_y_c() -> DftSystemSpec {
    DftSystemSpec::new("TwinDislocMgY(C)", 74_164.0, 154_781.0, 1.7e9, 4, true, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercell_electron_counts_match_the_paper() {
        assert_eq!(twin_disloc_mg_y_a().supercell_electrons(), 302_668.0);
        assert_eq!(twin_disloc_mg_y_b().supercell_electrons(), 464_343.0);
        assert_eq!(twin_disloc_mg_y_c().supercell_electrons(), 619_124.0);
        assert_eq!(disloc_mg_y().supercell_electrons(), 24_082.0);
    }

    #[test]
    fn ybcd_dof_matches_fig8_caption() {
        let s = ybcd_quasicrystal();
        assert_eq!(s.dofs, 75_069_290.0);
        // 240 Frontier nodes = 1,920 GCDs -> 39.1K DoF per GCD (Sec. 7.1.2)
        let dof_per_gcd = s.dofs / (240.0 * 8.0);
        assert!((dof_per_gcd / 1000.0 - 39.1).abs() < 0.1);
    }
}
