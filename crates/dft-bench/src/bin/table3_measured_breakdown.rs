//! Table 3 (measured): the per-step ChFES/SCF breakdown of a *real* SCF
//! run, profiled through the solver path, next to the simulated Frontier
//! schedule of `table3_sustained_performance`.
//!
//! The miniature helium-like system fits in seconds on one core; the point
//! is not the absolute numbers but that the measured rows carry the same
//! step names, wall-time ordering, and analytic FLOP attribution (CholGS-CI
//! and RR-D wall-time-only, per Sec. 6.3) as the paper's Table 3. Pass
//! `--json` to dump the full per-iteration profile instead of the table.

use dft_bench::{section, twin_disloc_mg_y_a};
use dft_core::scf::{scf, KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fem::space::FeSpace;
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    // miniature helium-like atom in a graded Dirichlet box
    let l = 12.0;
    let n = 3;
    let c = l / 2.0;
    let ax = || {
        Axis::graded(
            0.0,
            l,
            0.5,
            l / n as f64,
            &[c],
            3.0,
            BoundaryCondition::Dirichlet,
        )
    };
    let space = FeSpace::new(Mesh3d::new([ax(), ax(), ax()], 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
        pos: [c, c, c],
    }]);
    let cfg = ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-5,
        max_iter: 30,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        profile: true,
        ..ScfConfig::default()
    };
    let r = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
    let prof = r.profile.expect("profiling was requested");

    if json_only {
        println!("{}", prof.to_json_pretty());
        return;
    }

    section("Table 3 (measured) — miniature real SCF on this machine");
    println!(
        "system: He-like pseudo atom, {} DoFs, {} states, {} SCF iterations, converged: {}",
        space.ndofs(),
        cfg.n_states,
        r.iterations,
        r.converged
    );
    println!(
        "{:<14} {:>12} {:>8} {:>14} {:>10}",
        "step", "time (s)", "%", "FLOP", "GFLOPS"
    );
    let total = prof.total_seconds;
    for (step, seconds, flops) in prof.table3_rows() {
        let pct = 100.0 * seconds / total;
        // Named rows go through the profile's derived metric; the merged
        // "DH+EP+Others" tail has no single cumulative record, so rate it
        // from its summed columns.
        let gflops = prof.phase_gflops(&step).or(if flops > 0 && seconds > 0.0 {
            Some(flops as f64 / seconds / 1e9)
        } else {
            None
        });
        match gflops {
            Some(g) => println!(
                "{:<14} {:>12.4} {:>7.1}% {:>14} {:>10.2}",
                step, seconds, pct, flops, g
            ),
            None => println!(
                "{:<14} {:>12.4} {:>7.1}% {:>14} {:>10}",
                step, seconds, pct, "-", "-"
            ),
        }
    }
    println!();
    println!("sustained GFLOPS by phase (cumulative over the SCF run):");
    for (label, g) in prof.gflops_breakdown() {
        println!("  {label:<10} {g:>8.2}");
    }
    println!(
        "{:<14} {:>12.4}   (scope coverage {:.1}% of the SCF loop wall clock)",
        "total",
        total,
        100.0 * prof.coverage()
    );

    section("Table 3 (simulated) — TwinDislocMgY(A) on Frontier, for step names");
    let opts = SolverOptions {
        gpu_aware: false,
        ..SolverOptions::default()
    };
    let sim = scf_step(
        &twin_disloc_mg_y_a(),
        &opts,
        &ClusterSpec::new(MachineModel::frontier(), 2400),
    );
    println!("{:<14} {:>12} {:>12}", "step", "time (s)", "PFLOP");
    for s in &sim.steps {
        match s.pflop {
            Some(f) => println!("{:<14} {:>12.1} {:>12.1}", s.name, s.seconds, f),
            None => println!("{:<14} {:>12.1} {:>12}", s.name, s.seconds, "-"),
        }
    }
    println!();
    println!(
        "Shape check: both breakdowns use the same step set; run with --json \
         for the full per-iteration measured profile."
    );
}
