//! Distributed-forces / relaxation / MD benchmark, emitting `BENCH_md.json`.
//!
//! Three sections:
//!
//! 1. **Force assembly** — the serial O(atoms x nodes) Hellmann-Feynman
//!    quadrature is timed whole, then each rank's shard (owned-node mask +
//!    ion-ion round-robin) is timed in isolation: the ratio of the serial
//!    time to the max shard time is the measured division of the
//!    bottleneck. The same partition is then run through the real
//!    4-thread-rank `distributed_forces` twice, checking parity with the
//!    serial `compute_forces` (<= 1e-12 per component) and bit-identical
//!    reruns (L004).
//! 2. **FIRE relaxation** — the same dimer is relaxed twice at 2 ranks,
//!    cold (`warm_start = false`) and warm (each step's SCF resumes from
//!    the previous step's converged state), recording per-step SCF
//!    iteration counts; the cold arm's final energy is compared against
//!    the serial `relax` driver to 1e-10 Ha.
//! 3. **BO-MD** — a short velocity-Verlet run with warm-started SCF,
//!    recording the total-energy drift.
//!
//! Flags:
//! - `--stdout`         print the JSON instead of writing `BENCH_md.json`
//! - `--check [path]`   validate an existing artifact (CI mode; exits
//!   nonzero on schema or invariant violations)

use dft_bench::md::{ForceAssemblyStats, MdBench, MdRunStats, MdSetup, RelaxWarmStats};
use dft_bench::section;
use dft_core::forces::{
    compute_forces, electrostatic_force_partial, force_poisson, ion_ion_force_partial,
};
use dft_core::relax::{relax, RelaxConfig};
use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::run_cluster;
use dft_parallel::{
    dist_md, dist_relax, distributed_forces_profiled, DistRelaxConfig, DistScfConfig, DistSpace,
    MdConfig,
};
use std::path::PathBuf;
use std::time::Instant;

const FORCE_RANKS: usize = 4;
const FORCE_REPS: usize = 20;
/// Timed batches per measurement; the minimum batch is reported, which is
/// robust against scheduler interference on a shared single-core host.
const FORCE_TRIALS: usize = 5;
const RELAX_STEPS: usize = 4;
const MD_STEPS: usize = 4;
const MD_DT: f64 = 0.25;

/// Force-assembly workload: a 12^3-node periodic mesh with ten scattered
/// smeared ions, big enough for the quadrature to dominate shard timings.
fn force_workload() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(4, 12.0, 3));
    let mut atoms = Vec::new();
    for i in 0..10usize {
        let t = i as f64;
        atoms.push(Atom {
            kind: AtomKind::Pseudo {
                z: 1.0 + (i % 2) as f64,
                r_c: 0.7 + 0.02 * (i % 3) as f64,
            },
            pos: [
                0.6 + 1.2 * t, // even spread along the slab axis
                2.0 + 1.7 * ((t * 0.83).sin().abs() * 4.0),
                2.0 + 1.5 * ((t * 1.31).cos().abs() * 4.0),
            ],
        });
    }
    (space, AtomicSystem::new(atoms))
}

/// Relax/MD workload: the off-equilibrium dimer of the oracle tests.
fn relax_workload() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [2.1, 3.0, 3.0],
        },
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [3.9, 3.0, 3.0],
        },
    ]);
    (space, sys)
}

fn relax_scf_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

fn fresh_root(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dft-bench-md-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn check(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let report: MdBench =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    match report.validate() {
        Ok(()) => {
            println!("{path}: schema and invariants OK");
            std::process::exit(0)
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        check(
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or("BENCH_md.json"),
        );
    }
    let stdout_only = args.iter().any(|a| a == "--stdout");

    // ---- 1. force assembly ------------------------------------------------
    section("Force assembly: serial vs partitioned shards");
    let (fspace, fsys) = force_workload();
    let rho_e = fsys.initial_density(&fspace);
    let phi = force_poisson(&fspace, &fsys, &rho_e).expect("force Poisson");

    let time_min = |mut body: Box<dyn FnMut() + '_>| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..FORCE_TRIALS {
            let t = Instant::now();
            for _ in 0..FORCE_REPS {
                body();
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    let serial_s = time_min(Box::new(|| {
        let es = electrostatic_force_partial(&fspace, &fsys, &phi, None);
        let ii = ion_ion_force_partial(&fspace, &fsys, 0, 1);
        std::hint::black_box((es, ii));
    }));
    println!(
        "serial assembly: {:.1} ms over {FORCE_REPS} evaluations ({} nodes x {} atoms)",
        1e3 * serial_s,
        fspace.nnodes(),
        fsys.atoms.len()
    );

    // each rank's shard, timed in isolation: owned-node electrostatic mask
    // plus the round-robin ion-ion shard — exactly what one rank of the
    // distributed assembly computes before the reduction
    let mut shard_s = Vec::with_capacity(FORCE_RANKS);
    for r in 0..FORCE_RANKS {
        let dist = DistSpace::new(&fspace, r, FORCE_RANKS);
        let mask: Vec<bool> = dist.dec.owned_node.clone();
        let s = time_min(Box::new(|| {
            let es = electrostatic_force_partial(&fspace, &fsys, &phi, Some(&mask));
            let ii = ion_ion_force_partial(&fspace, &fsys, r, FORCE_RANKS);
            std::hint::black_box((es, ii));
        }));
        println!("rank {r} shard: {:.1} ms", 1e3 * s);
        shard_s.push(s);
    }
    let critical = shard_s.iter().copied().fold(0.0, f64::max);
    let min_shard = shard_s.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "partition: {:.2}x division of the serial assembly (balance {:.2}x)",
        serial_s / critical,
        critical / min_shard
    );

    // parity + determinism + per-phase profile through the real cluster
    let f_ref = compute_forces(&fspace, &fsys, &rho_e).expect("serial forces");
    let run = || {
        run_cluster(FORCE_RANKS, |comm| {
            let t = Instant::now();
            let out = distributed_forces_profiled(comm, &fspace, &fsys, &rho_e, None)
                .expect("distributed forces");
            (out.0, out.1, t.elapsed().as_secs_f64())
        })
        .0
    };
    let (a, b) = (run(), run());
    let mut max_diff = 0.0f64;
    let mut bit_identical = true;
    for (fa, fb) in a.iter().zip(b.iter()) {
        for (ai, (va, vr)) in fa.0.iter().zip(f_ref.iter()).enumerate() {
            for k in 0..3 {
                max_diff = max_diff.max((va[k] - vr[k]).abs());
                if va[k].to_bits() != fb.0[ai][k].to_bits() {
                    bit_identical = false;
                }
            }
        }
    }
    type ForceRun = (Vec<[f64; 3]>, dft_parallel::ForceAssemblyProfile, f64);
    let mean =
        |f: &dyn Fn(&ForceRun) -> f64| -> f64 { a.iter().map(f).sum::<f64>() / a.len() as f64 };
    let poisson_mean = mean(&|r| r.1.poisson_s);
    let reduce_mean = mean(&|r| r.1.reduce_s);
    let wall_mean = mean(&|r| r.2);
    println!(
        "parity: max |dF| = {max_diff:.3e}, bit-identical reruns: {bit_identical}, \
         mean wall {:.1} ms (poisson {:.1} ms, reduce {:.2} ms)",
        1e3 * wall_mean,
        1e3 * poisson_mean,
        1e3 * reduce_mean
    );

    // ---- 2. cold vs warm FIRE relaxation ----------------------------------
    section("FIRE relaxation: cold vs warm-started SCF");
    let (rspace, rsys) = relax_workload();
    let scf_cfg = relax_scf_cfg();
    let fire = RelaxConfig {
        max_steps: RELAX_STEPS,
        force_tol: 0.0, // run every step: the arms must stay comparable
        ..RelaxConfig::default()
    };

    let r_ser = relax(&rspace, &rsys, &Lda, &scf_cfg, &fire).expect("serial relax");
    println!(
        "serial driver: E = {:+.10} Ha after {} evaluations",
        r_ser.scf.energy.free_energy,
        r_ser.trajectory.len()
    );

    let arm = |warm: bool| {
        let root = fresh_root(if warm { "relax-warm" } else { "relax-cold" });
        let dcfg = DistScfConfig::new(scf_cfg.clone()).with_checkpoints(&root, 50);
        let rcfg = DistRelaxConfig {
            fire: fire.clone(),
            warm_start: warm,
        };
        let (results, _) = run_cluster(2, |comm| {
            dist_relax(comm, &rspace, &rsys, &Lda, &dcfg, &rcfg, &[KPoint::gamma()])
                .expect("dist relax")
        });
        let _ = std::fs::remove_dir_all(&root);
        results.into_iter().next().expect("rank 0 result")
    };
    let cold = arm(false);
    let warm = arm(true);
    let iters = |r: &dft_parallel::DistRelaxResult| -> Vec<usize> {
        r.trajectory.iter().map(|t| t.scf_iterations).collect()
    };
    let (cold_iters, warm_iters) = (iters(&cold), iters(&warm));
    let warm_count = warm
        .trajectory
        .iter()
        .skip(1)
        .filter(|t| t.warm_started)
        .count();
    let cold_after: usize = cold_iters[1..].iter().sum();
    let warm_after: usize = warm_iters[1..].iter().sum();
    println!("cold arm SCF iterations: {cold_iters:?}");
    println!("warm arm SCF iterations: {warm_iters:?} ({warm_count} warm-started)");
    println!(
        "warm start saves {:.1}% of the post-first-step iterations",
        100.0 * (1.0 - warm_after as f64 / cold_after as f64)
    );
    let abs_cold_vs_serial = (cold.scf.energy.free_energy - r_ser.scf.energy.free_energy).abs();
    let abs_warm_vs_cold = (warm.scf.energy.free_energy - cold.scf.energy.free_energy).abs();
    println!(
        "parity: |cold - serial| = {abs_cold_vs_serial:.3e} Ha, \
         |warm - cold| = {abs_warm_vs_cold:.3e} Ha"
    );

    // ---- 3. BO-MD ---------------------------------------------------------
    section("Velocity-Verlet BO-MD with warm-started SCF");
    let root = fresh_root("md");
    let dcfg = DistScfConfig::new(scf_cfg.clone()).with_checkpoints(&root, 50);
    let mcfg = MdConfig {
        steps: MD_STEPS,
        dt: MD_DT,
        warm_start: true,
    };
    let (md_results, _) = run_cluster(2, |comm| {
        dist_md(comm, &rspace, &rsys, &Lda, &dcfg, &mcfg, &[KPoint::gamma()]).expect("dist md")
    });
    let _ = std::fs::remove_dir_all(&root);
    let mdr = md_results.into_iter().next().expect("rank 0 result");
    let md_iters: Vec<usize> = mdr.trajectory.iter().map(|t| t.scf_iterations).collect();
    let md_warm = mdr
        .trajectory
        .iter()
        .skip(1)
        .filter(|t| t.warm_started)
        .count();
    let (e0, e1) = (
        mdr.trajectory.first().expect("md step 0").total,
        mdr.trajectory.last().expect("md final step").total,
    );
    println!("MD SCF iterations: {md_iters:?} ({md_warm} warm-started)");
    println!(
        "total energy: {:+.8} -> {:+.8} Ha (drift {:.3e})",
        e0,
        e1,
        (e1 - e0).abs()
    );

    // ---- emit -------------------------------------------------------------
    let bench = MdBench {
        note: "threaded MPI stand-in (ranks = threads) on a single-core host: concurrent \
               thread-ranks time-slice one core, so end-to-end wall time cannot drop and \
               `partition_speedup` is instead measured by timing each rank's assembly shard \
               (owned-node electrostatic quadrature + ion-ion round-robin) in isolation — \
               the max shard is the assembly critical path a real multi-core/multi-node run \
               rides; force parity/determinism go through the real 4-thread-rank cluster; \
               relax/MD arms run at 2 thread-ranks with SCF density tolerance 1e-6, so the \
               warm arm's final energy differs from the cold arm's at tolerance-level noise \
               while the cold arm replays the serial FIRE trajectory to 1e-10 Ha"
            .to_string(),
        setup: MdSetup {
            ranks: FORCE_RANKS,
            grid: format!("{FORCE_RANKS}x1x1"),
            force_nodes: fspace.nnodes(),
            force_atoms: fsys.atoms.len(),
            relax_ndofs: rspace.ndofs(),
            scf_tol: scf_cfg.tol,
            relax_steps: RELAX_STEPS,
            md_steps: MD_STEPS,
        },
        forces: ForceAssemblyStats {
            evaluations: FORCE_REPS,
            serial_assembly_s: serial_s,
            rank_assembly_s: shard_s.clone(),
            critical_path_s: critical,
            partition_speedup: serial_s / critical,
            balance: critical / min_shard,
            distributed_wall_s_mean: wall_mean,
            poisson_s_mean: poisson_mean,
            reduce_s_mean: reduce_mean,
            max_abs_force_diff_vs_serial: max_diff,
            bit_identical_reruns: bit_identical,
        },
        relax: RelaxWarmStats {
            steps: RELAX_STEPS,
            cold_scf_iterations: cold_iters.clone(),
            warm_scf_iterations: warm_iters.clone(),
            warm_steps: warm_count,
            cold_total_after_first: cold_after,
            warm_total_after_first: warm_after,
            savings_percent: 100.0 * (1.0 - warm_after as f64 / cold_after as f64),
            serial_final_energy_ha: r_ser.scf.energy.free_energy,
            cold_final_energy_ha: cold.scf.energy.free_energy,
            warm_final_energy_ha: warm.scf.energy.free_energy,
            abs_cold_vs_serial_ha: abs_cold_vs_serial,
            abs_warm_vs_cold_ha: abs_warm_vs_cold,
            final_fmax: warm.trajectory.last().expect("final record").fmax,
        },
        md: MdRunStats {
            steps: MD_STEPS,
            dt: MD_DT,
            scf_iterations: md_iters,
            warm_steps: md_warm,
            initial_total_ha: e0,
            final_total_ha: e1,
            energy_drift_ha: (e1 - e0).abs(),
        },
    };

    bench
        .validate()
        .expect("emitted report must satisfy its own schema");
    let json = serde_json::to_string_pretty(&bench).expect("serializable");
    if stdout_only {
        println!("{json}");
    } else {
        std::fs::write("BENCH_md.json", &json).expect("write BENCH_md.json");
        println!();
        println!("wrote BENCH_md.json");
    }
}
