//! Fig. 4: Chebyshev-filtering throughput (% of FP64 peak) vs wavefunction
//! block size B_f on Summit, Crusher and Perlmutter, using the DislocMgY
//! system ((6,016 atoms, 12,041 e-) x 2 k-points, p = 8, ~96M DoF).
//!
//! Paper targets at B_f = 500: Summit 56.3%, Crusher 41.1%, Perlmutter
//! 85.7% (FP64 tensor cores), rising with B_f in all cases.

use dft_bench::{disloc_mg_y, section};
use dft_hpc::event::pipelined_blocks;
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{DftSystemSpec, SolverOptions, CF_L1_PASSES};

/// CF efficiency for one machine at a given block size (one filtered
/// sweep over all states; same composition as the schedule's CF step).
fn cf_efficiency(sys: &DftSystemSpec, cluster: &ClusterSpec, bf: f64) -> f64 {
    let opts = SolverOptions {
        block_size: bf,
        ..SolverOptions::default()
    };
    let gpus = cluster.total_gpus() as f64 / sys.kpoints as f64;
    let m_loc = sys.dofs / gpus;
    let cells_loc = sys.ncells() / gpus;
    let gpu = &cluster.machine.gpu;
    let flops = 2.0 * sys.gemm_factor() * sys.nloc() * sys.nloc() * cells_loc * bf;
    let t_gemm = gpu.gemm_seconds(flops, bf, 0.0);
    let t_l1 = gpu.mem_seconds(CF_L1_PASSES * m_loc * bf * sys.scalar_bytes());
    let wire = 4.0 * if sys.complex { 2.0 } else { 1.0 };
    let t_halo = cluster
        .machine
        .p2p_seconds(6.0 * m_loc.powf(2.0 / 3.0) * bf * wire, opts.gpu_aware);
    let n_units = ((sys.states / bf).ceil() as usize).max(1);
    let t = pipelined_blocks(n_units, t_gemm + t_l1, t_halo, true);
    let total_flops = flops * n_units as f64;
    total_flops / t / (gpu.fp64_tflops * 1e12)
}

fn main() {
    let sys = disloc_mg_y();
    // 160 nodes on each machine (the paper quotes Crusher at 160 nodes)
    let machines = [
        ("Summit", MachineModel::summit(), 160usize, 56.3),
        ("Crusher", MachineModel::crusher(), 160, 41.1),
        ("Perlmutter", MachineModel::perlmutter(), 160, 85.7),
    ];
    section("Fig. 4 — CF throughput vs block size B_f (% of FP64 peak)");
    print!("{:<8}", "B_f");
    for (name, _, _, _) in &machines {
        print!("{name:>12}");
    }
    println!();
    let bfs = [25.0, 50.0, 100.0, 200.0, 350.0, 500.0];
    let mut at500 = Vec::new();
    for (bi, &bf) in bfs.iter().enumerate() {
        print!("{bf:<8.0}");
        let last = bi == bfs.len() - 1;
        for (_, m, nodes, _) in &machines {
            let eff = cf_efficiency(&sys, &ClusterSpec::new(m.clone(), *nodes), bf);
            print!("{:>11.1}%", 100.0 * eff);
            if last {
                at500.push(100.0 * eff);
            }
        }
        println!();
    }
    println!();
    println!("paper @ B_f=500:   Summit 56.3%   Crusher 41.1%   Perlmutter 85.7%");
    println!(
        "model @ B_f=500:   Summit {:.1}%   Crusher {:.1}%   Perlmutter {:.1}%",
        at500[0], at500[1], at500[2]
    );
    println!(
        "shape: Perlmutter > Summit > Crusher: {}",
        at500[2] > at500[0] && at500[0] > at500[1]
    );
}
