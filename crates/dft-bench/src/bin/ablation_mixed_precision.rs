//! Sec. 5.4.2 ablation: mixed FP32/FP64 precision.
//!
//! Two real measurements: (1) the energy error of a mixed-precision SCF vs
//! full FP64 (paper: "well within the target discretization accuracy");
//! (2) the wire-traffic reduction of FP32 boundary communication on the
//! threaded cluster runtime (paper: ~2x).

use dft_bench::pipeline::MiniSystem;
use dft_bench::section;
use dft_core::scf::{scf, KPoint};
use dft_core::xc::Lda;
use dft_hpc::comm::{run_cluster, WirePrecision};
use dft_parallel::{distributed_scf, DistScfConfig, GridShape};
use std::sync::atomic::Ordering;

fn main() {
    section("Sec. 5.4.2 — mixed-precision ChFES accuracy (real miniature SCF)");
    let ms = &MiniSystem::training_set()[1];
    let space = ms.space();
    let sys = ms.atomic_system();
    let mut cfg = ms.scf_config();
    let r64 = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
    cfg.mixed_precision = true;
    let rmx = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
    println!("FP64  free energy: {:+.8} Ha", r64.energy.free_energy);
    println!("mixed free energy: {:+.8} Ha", rmx.energy.free_energy);
    println!(
        "|dE| = {:.2e} Ha/atom (target discretization accuracy: 1e-4 Ha/atom)",
        (r64.energy.free_energy - rmx.energy.free_energy).abs() / sys.atoms.len() as f64
    );

    section("Sec. 5.4.2 — FP32 boundary-communication traffic (threaded runtime)");
    // halo exchange of a 20k-value partition boundary among 8 ranks
    let boundary: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut results = Vec::new();
    for wire in [WirePrecision::Fp64, WirePrecision::Fp32] {
        let b = boundary.clone();
        let (errs, stats) = run_cluster(8, move |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_f64(next, 1, &b, wire).expect("send");
            let deadline = std::time::Instant::now() + c.timeout();
            let got = c.recv_f64_deadline(prev, 1, wire, deadline).expect("recv");
            got.iter()
                .zip(b.iter())
                .map(|(a, t)| (a - t).abs())
                .fold(0.0f64, f64::max)
        });
        let bytes = stats.bytes_sent.load(Ordering::Relaxed);
        let max_err = errs.iter().cloned().fold(0.0f64, f64::max);
        println!("{wire:?}: {bytes:>9} bytes on the wire, max promotion error {max_err:.2e}");
        results.push(bytes as f64);
    }
    println!(
        "traffic reduction: {:.2}x (paper: ~2x), FP64 accumulation retained",
        results[0] / results[1]
    );

    section("Sec. 5.4.2 — FP32 off-diagonal subspace reductions (4x2 process grid)");
    // the off-band-diagonal blocks of S and the projected Hamiltonian decay
    // toward zero as the SCF converges, so demoting only those blocks to an
    // FP32 wire (Cholesky pivot blocks and the cleanup pass stay FP64)
    // leaves the energy within the 1e-8 Ha acceptance band
    let run_grid = |subspace_fp32: bool| {
        // all-FP64 base; only the subspace wire varies
        let mut dcfg = DistScfConfig::new(ms.scf_config()).with_grid(GridShape::new(4, 2, 1));
        if subspace_fp32 {
            dcfg = dcfg.with_subspace_fp32();
        }
        let (space, sys) = (ms.space(), ms.atomic_system());
        let (res, stats) = run_cluster(8, move |c| {
            distributed_scf(c, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        assert!(res[0].converged);
        (res[0].energy.free_energy, stats.snapshot())
    };
    let (e_sub64, snap64) = run_grid(false);
    let (e_sub32, snap32) = run_grid(true);
    println!(
        "FP64 subspace wire: {e_sub64:+.10} Ha ({} B, all FP64)",
        snap64.0
    );
    println!(
        "FP32 off-diag wire: {e_sub32:+.10} Ha ({} B, {} of them FP32)",
        snap32.0, snap32.3
    );
    println!(
        "|dE| = {:.2e} Ha (acceptance band: 1e-8 Ha)",
        (e_sub64 - e_sub32).abs()
    );
}
