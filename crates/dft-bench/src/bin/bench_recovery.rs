//! Fault-tolerance benchmark: checkpoint overhead and kill-one-rank
//! recovery of the distributed SCF, emitting `BENCH_recovery.json` (schema
//! in `dft_bench::recovery`):
//!
//! * the uninterrupted 4-rank reference (wall, iterations, free energy);
//! * the same run with snapshots every 2 iterations — wall overhead and
//!   bytes retained on disk;
//! * rank 2 killed at SCF iteration 3 under a 2 s receive deadline — the
//!   survivors drain with `RankLost`, the restart driver relaunches at 3
//!   ranks from the iteration-2 snapshot, and the recovered free energy is
//!   checked against the reference to 1e-10 Ha.
//!
//! Flags: `--stdout` prints the JSON instead of writing the file;
//! `--check [path]` validates an existing artifact against the schema and
//! exits nonzero on violation (used by CI).

use dft_bench::recovery::{BaselineRun, CheckpointRun, RecoveryBench, RecoveryRun};
use dft_bench::scaling::SystemCard;
use dft_bench::section;
use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{run_cluster, ClusterOptions, FaultPlan};
use dft_parallel::{distributed_scf, scf_with_recovery, DistScfConfig};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NRANKS: usize = 4;
const CHECKPOINT_EVERY: usize = 2;
const KILL_RANK: usize = 2;
const KILL_EPOCH: u64 = 3;
const TIMEOUT: Duration = Duration::from_secs(2);

fn bench_system() -> (FeSpace, AtomicSystem) {
    // 8 cells, one soft pseudo atom, all-periodic — the bench_scaling system
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

fn bench_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

/// Total size of every file under `dir`, and the number of complete
/// snapshot directories.
fn snapshot_usage(dir: &Path) -> (u64, usize) {
    let mut bytes = 0;
    let mut complete = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if !p.is_dir() {
            continue;
        }
        if p.join("COMPLETE").exists() {
            complete += 1;
        }
        for f in std::fs::read_dir(&p).into_iter().flatten().flatten() {
            if let Ok(md) = f.metadata() {
                bytes += md.len();
            }
        }
    }
    (bytes, complete)
}

fn check(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let report: RecoveryBench =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    match report.validate() {
        Ok(()) => {
            println!("{path}: schema and invariants OK");
            std::process::exit(0)
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        check(
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or("BENCH_recovery.json"),
        );
    }
    let stdout_only = args.iter().any(|a| a == "--stdout");

    let (space, sys) = bench_system();
    let cfg = bench_cfg();
    let system = SystemCard {
        description: "periodic 6.0 Bohr cube, 2^3 cells, p=3, one Z=2 pseudo atom, LDA, Γ"
            .to_string(),
        ndofs: space.ndofs(),
        nnodes: space.nnodes(),
        ncells: space.cells().len(),
        n_states: cfg.n_states,
        n_electrons: sys.n_electrons(),
    };

    section("Uninterrupted 4-rank reference");
    let dcfg = DistScfConfig::new(cfg.clone());
    let t0 = Instant::now();
    let (reference, _) = run_cluster(NRANKS, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
    });
    let baseline = BaselineRun {
        nranks: NRANKS,
        wall_seconds: t0.elapsed().as_secs_f64(),
        iterations: reference[0].iterations,
        free_energy_ha: reference[0].energy.free_energy,
        converged: reference[0].converged,
    };
    println!(
        "{NRANKS} ranks: {:.3} s, {} iters, E = {:+.10} Ha",
        baseline.wall_seconds, baseline.iterations, baseline.free_energy_ha
    );

    section("Checkpoint overhead — snapshots every 2 iterations");
    let ckpt_dir = std::env::temp_dir().join(format!("dft-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let dcfg_ck =
        DistScfConfig::new(cfg.clone()).with_checkpoints(ckpt_dir.clone(), CHECKPOINT_EVERY);
    let t0 = Instant::now();
    let (with_ck, _) = run_cluster(NRANKS, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg_ck, &[KPoint::gamma()]).expect("scf")
    });
    let ck_wall = t0.elapsed().as_secs_f64();
    assert!(with_ck[0].converged, "checkpointed run must converge");
    assert_eq!(
        with_ck[0].energy.free_energy.to_bits(),
        baseline.free_energy_ha.to_bits(),
        "checkpointing must not perturb the trajectory"
    );
    let (snapshot_bytes, snapshots_retained) = snapshot_usage(&ckpt_dir);
    let checkpointing = CheckpointRun {
        checkpoint_every: CHECKPOINT_EVERY,
        wall_seconds: ck_wall,
        snapshots_retained,
        snapshot_bytes,
        overhead_percent: 100.0 * (ck_wall / baseline.wall_seconds - 1.0),
    };
    println!(
        "{:.3} s ({:+.1}% vs reference), {} snapshots / {} B retained",
        ck_wall, checkpointing.overhead_percent, snapshots_retained, snapshot_bytes
    );

    section("Kill rank 2 at iteration 3 — drain, restart at 3 ranks, reconverge");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let opts = ClusterOptions {
        timeout: TIMEOUT,
        faults: Arc::new(FaultPlan::kill_at_epoch(KILL_RANK, KILL_EPOCH)),
        schedule: None,
    };
    let t0 = Instant::now();
    let report = scf_with_recovery(
        NRANKS,
        &opts,
        &space,
        &sys,
        &Lda,
        &dcfg_ck,
        &[KPoint::gamma()],
        2,
    )
    .expect("recovery must succeed");
    let rec_wall = t0.elapsed().as_secs_f64();
    let r0 = &report.results[0];
    let recovery = RecoveryRun {
        kill_rank: KILL_RANK,
        kill_epoch: KILL_EPOCH,
        timeout_seconds: TIMEOUT.as_secs_f64(),
        attempts: report.attempts,
        initial_nranks: report.initial_nranks,
        final_nranks: report.final_nranks,
        resumed_from_iteration: r0.resumed_from.expect("restart must resume"),
        wall_seconds: rec_wall,
        free_energy_ha: r0.energy.free_energy,
        abs_energy_diff_ha: (r0.energy.free_energy - baseline.free_energy_ha).abs(),
        converged: r0.converged,
    };
    println!(
        "{} launches, {} -> {} ranks, resumed from iteration {}, {:.3} s total",
        recovery.attempts,
        recovery.initial_nranks,
        recovery.final_nranks,
        recovery.resumed_from_iteration,
        rec_wall
    );
    println!(
        "E(recovered) = {:+.10} Ha   |dE| vs reference = {:.3e} Ha",
        recovery.free_energy_ha, recovery.abs_energy_diff_ha
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let bench = RecoveryBench {
        note: "threaded MPI stand-in (ranks = threads); the recovery wall time is dominated \
               by the injected 2 s receive deadline the survivors wait out before draining; \
               snapshot bytes are the newest two complete iteration directories (older ones \
               are pruned); energies are free energies of converged runs"
            .to_string(),
        system,
        baseline,
        checkpointing,
        recovery,
    };
    bench
        .validate()
        .expect("emitted report must satisfy its own schema");
    let json = serde_json::to_string_pretty(&bench).expect("serializable");
    if stdout_only {
        println!("{json}");
    } else {
        std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
        println!();
        println!("wrote BENCH_recovery.json");
    }
}
