//! Kernel before/after benchmark: the blocked packed-panel GEMM engine and
//! the table-driven FE gather/scatter path against the seed reference
//! implementations (`gemm_reference`, `batched_gemm_reference`,
//! `apply_stiffness_reference`), compiled under identical build flags.
//!
//! Emits `BENCH_kernels.json` in the current directory (pass `--stdout` to
//! print the JSON instead) — the artifact backing the PR's speedup claims:
//!
//! * dense GEMM sweep (f64 NN/TN, C64 NN) blocked vs reference;
//! * strided-batched FE cell GEMM vs reference;
//! * sum-factorized `apply_stiffness` (table gather/scatter, column-blocked
//!   lanes) vs the seed per-column path;
//! * `chebyshev_filter` on a miniature Hamiltonian: the scratch/swap
//!   recurrence over the fused scaled-gather apply vs a faithful seed-path
//!   reimplementation (clone-based recurrence + unfused reference apply);
//! * one full ChFES cycle on the same miniature system, current code only
//!   (wall time context, no seed twin);
//! * the ML-XC MLP forward pass, batched GEMM evaluation vs the seed
//!   per-point matvec chain;
//! * the autotuner's `B_f` block-size sweep (paper Fig. 4), one entry per
//!   candidate, emitted as `cf_blocksize`.
//!
//! Before timing anything the bin runs the [`dft_linalg::autotune`] sweep,
//! so every number below is measured with this machine's tuned `MC/KC/NC`
//! blocking; the winning profile is persisted for the SCF drivers.

use dft_bench::section;
use dft_core::chebyshev::{
    chebyshev_filter, chebyshev_filter_flops, chfes, lanczos_bounds, random_subspace, ChfesOptions,
};
use dft_core::hamiltonian::KsHamiltonian;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_linalg::batched::{batched_gemm, batched_gemm_reference, BatchLayout};
use dft_linalg::gemm::{gemm, gemm_flops, gemm_reference, Op};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Scalar, C64};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelResult {
    kernel: String,
    case: String,
    flops: u64,
    seed_seconds: Option<f64>,
    seed_gflops: Option<f64>,
    blocked_seconds: f64,
    blocked_gflops: Option<f64>,
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct BenchReport {
    note: String,
    results: Vec<KernelResult>,
}

/// Best (minimum) single-rep time. The minimum is the standard noise-robust
/// bench statistic: interference and DVFS dips only ever make a rep slower,
/// so the fastest rep is the closest observation of the kernel's true cost.
fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Spin the FMA units until the clock governor reaches steady state — this
/// machine ramps ~35 -> ~55 GFLOP/s over the first second of vector work,
/// which would otherwise penalize whichever kernel happens to run first.
fn warm_up_cpu() {
    let t0 = Instant::now();
    let mut acc = [1.0f64; 16];
    while t0.elapsed().as_secs_f64() < 1.0 {
        for _ in 0..10_000 {
            for a in acc.iter_mut() {
                *a = 1.000_000_1f64.mul_add(*a, 1e-12);
            }
        }
    }
    std::hint::black_box(acc);
}

fn result(
    kernel: &str,
    case: &str,
    flops: u64,
    seed_seconds: Option<f64>,
    blocked_seconds: f64,
) -> KernelResult {
    let gf = |s: f64| {
        if flops > 0 && s > 0.0 {
            Some(flops as f64 / s / 1e9)
        } else {
            None
        }
    };
    let r = KernelResult {
        kernel: kernel.to_string(),
        case: case.to_string(),
        flops,
        seed_seconds,
        seed_gflops: seed_seconds.and_then(gf),
        blocked_seconds,
        blocked_gflops: gf(blocked_seconds),
        speedup: seed_seconds.map(|s| s / blocked_seconds),
    };
    match (r.seed_seconds, r.speedup) {
        (Some(s), Some(x)) => println!(
            "{:<16} {:<24} seed {:>9.5} s  blocked {:>9.5} s  speedup {:>5.2}x  {:>7.2} GFLOPS",
            r.kernel,
            r.case,
            s,
            r.blocked_seconds,
            x,
            r.blocked_gflops.unwrap_or(0.0)
        ),
        _ => println!(
            "{:<16} {:<24} blocked {:>9.5} s  {:>7.2} GFLOPS",
            r.kernel,
            r.case,
            r.blocked_seconds,
            r.blocked_gflops.unwrap_or(0.0)
        ),
    }
    r
}

fn bench_gemm_f64(results: &mut Vec<KernelResult>) {
    for n in [128usize, 256, 512] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) as f64 * 0.618).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) as f64 * 0.23).cos());
        let mut c = Matrix::zeros(n, n);
        let reps = if n >= 512 { 10 } else { 30 };
        let flops = gemm_flops::<f64>(n, n, n);
        for (op_a, tag) in [(Op::None, "NN"), (Op::ConjTrans, "TN")] {
            let seed = time(reps, || {
                gemm_reference(1.0, &a, op_a, &b, Op::None, 0.0, &mut c)
            });
            let blocked = time(reps, || gemm(1.0, &a, op_a, &b, Op::None, 0.0, &mut c));
            results.push(result(
                "gemm_f64",
                &format!("{tag} {n}x{n}x{n}"),
                flops,
                Some(seed),
                blocked,
            ));
        }
    }
}

fn bench_gemm_c64(results: &mut Vec<KernelResult>) {
    let n = 256;
    let a = Matrix::from_fn(n, n, |i, j| {
        C64::new(
            ((i * 31 + j * 17) as f64 * 0.618).sin(),
            ((i * 3 + j) as f64 * 0.11).cos(),
        )
    });
    let b = Matrix::from_fn(n, n, |i, j| {
        C64::new(
            ((i * 13 + j * 7) as f64 * 0.23).cos(),
            ((i + j * 5) as f64 * 0.37).sin(),
        )
    });
    let mut c = Matrix::zeros(n, n);
    let flops = gemm_flops::<C64>(n, n, n);
    for (op_a, tag) in [(Op::None, "NN"), (Op::ConjTrans, "CN")] {
        let seed = time(5, || {
            gemm_reference(C64::ONE, &a, op_a, &b, Op::None, C64::ZERO, &mut c)
        });
        let blocked = time(5, || {
            gemm(C64::ONE, &a, op_a, &b, Op::None, C64::ZERO, &mut c)
        });
        results.push(result(
            "gemm_c64",
            &format!("{tag} {n}x{n}x{n}"),
            flops,
            Some(seed),
            blocked,
        ));
    }
}

fn bench_batched_cell_gemm(results: &mut Vec<KernelResult>) {
    // FE cell shapes: nloc = (p+1)^3 local DoFs per cell, bf wavefunction
    // columns, one small GEMM per cell.
    for (p, bf, cells) in [(3usize, 32usize, 64usize), (5, 32, 27)] {
        let nloc = (p + 1).pow(3);
        let a: Vec<f64> = (0..nloc * nloc * cells)
            .map(|i| ((i * 13) as f64 * 0.1).sin())
            .collect();
        let b: Vec<f64> = (0..nloc * bf * cells)
            .map(|i| ((i * 7) as f64 * 0.2).cos())
            .collect();
        let mut out = vec![0.0; nloc * bf * cells];
        let layout = BatchLayout::packed(nloc, bf, nloc, cells);
        let flops = layout.flops::<f64>();
        let seed = time(20, || {
            batched_gemm_reference(layout, 1.0, &a, &b, 0.0, &mut out)
        });
        let blocked = time(20, || batched_gemm(layout, 1.0, &a, &b, 0.0, &mut out));
        results.push(result(
            "batched_cell_gemm",
            &format!("p{p} bf{bf} cells{cells}"),
            flops,
            Some(seed),
            blocked,
        ));
    }
}

fn miniature_system() -> (FeSpace, Vec<f64>) {
    let l = 12.0;
    let space = FeSpace::new(Mesh3d::cube(4, l, 5));
    let v: Vec<f64> = (0..space.nnodes())
        .map(|nn| {
            let c = space.node_coord(nn);
            0.5 * ((c[0] - l / 2.0).powi(2) + (c[1] - l / 2.0).powi(2) + (c[2] - l / 2.0).powi(2))
        })
        .collect();
    (space, v)
}

fn bench_apply_stiffness(results: &mut Vec<KernelResult>) {
    let (space, _) = miniature_system();
    let nd = space.ndofs();
    let ncols = 16;
    let x = Matrix::from_fn(nd, ncols, |i, j| ((i + 31 * j) as f64 * 0.23).sin());
    let mut y = Matrix::zeros(nd, ncols);
    let flops = space.stiffness_apply_flops::<f64>(ncols);
    let seed = time(10, || space.apply_stiffness_reference(&x, &mut y, [1.0; 3]));
    let blocked = time(10, || space.apply_stiffness(&x, &mut y, [1.0; 3]));
    results.push(result(
        "apply_stiffness",
        &format!("p5 {ncols}cols nd{nd}"),
        flops,
        Some(seed),
        blocked,
    ));
}

/// Seed-path Hamiltonian twin: input scaling through an explicit clone and
/// the per-column reference stiffness apply — exactly the pre-optimization
/// operator, kept here so the filter comparison isolates the new kernels.
struct SeedHamiltonian<'a> {
    space: &'a FeSpace,
    v_eff_dof: Vec<f64>,
}

impl LinearOperator<f64> for SeedHamiltonian<'_> {
    fn dim(&self) -> usize {
        self.space.ndofs()
    }

    fn apply(&self, x: &Matrix<f64>, y: &mut Matrix<f64>) {
        let s = self.space.inv_sqrt_mass();
        let mut xs = x.clone();
        for j in 0..xs.ncols() {
            for (v, &si) in xs.col_mut(j).iter_mut().zip(s.iter()) {
                *v *= si;
            }
        }
        self.space.apply_stiffness_reference(&xs, y, [1.0; 3]);
        for j in 0..y.ncols() {
            let ycol = y.col_mut(j);
            let xcol = x.col(j);
            for ((yv, &xv), (&si, &vi)) in ycol
                .iter_mut()
                .zip(xcol.iter())
                .zip(s.iter().zip(self.v_eff_dof.iter()))
            {
                *yv = yv.scale(0.5 * si) + xv.scale(vi);
            }
        }
    }
}

/// Seed-path Chebyshev recurrence: per-step `clone()` ping-pong, as in the
/// pre-optimization filter.
fn chebyshev_filter_seed(
    op: &dyn LinearOperator<f64>,
    x: &mut Matrix<f64>,
    m: usize,
    a: f64,
    b: f64,
    a0: f64,
) {
    let e = (b - a) / 2.0;
    let c = (b + a) / 2.0;
    let mut sigma = e / (a0 - c);
    let sigma1 = sigma;
    let gamma = 2.0 / sigma1;
    let mut y = Matrix::zeros(x.nrows(), x.ncols());
    op.apply(x, &mut y);
    for j in 0..x.ncols() {
        let xcol = x.col(j);
        for (yv, &xv) in y.col_mut(j).iter_mut().zip(xcol.iter()) {
            *yv = (*yv - xv.scale(c)).scale(sigma1 / e);
        }
    }
    for _k in 2..=m {
        let sigma2 = 1.0 / (gamma - sigma);
        let mut hy = Matrix::zeros(x.nrows(), x.ncols());
        op.apply(&y, &mut hy);
        for j in 0..x.ncols() {
            let xcol = x.col(j);
            let ycol = y.col(j);
            for ((hv, &yv), &xv) in hy.col_mut(j).iter_mut().zip(ycol.iter()).zip(xcol.iter()) {
                *hv = (*hv - yv.scale(c)).scale(2.0 * sigma2 / e) - xv.scale(sigma * sigma2);
            }
        }
        *x = y.clone();
        y = hy;
        sigma = sigma2;
    }
    *x = y.clone();
}

fn bench_chebyshev_filter(results: &mut Vec<KernelResult>) {
    let (space, v) = miniature_system();
    let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
    let seed_h = SeedHamiltonian {
        space: &space,
        v_eff_dof: (0..space.ndofs())
            .map(|d| v[space.node_of_dof(d)])
            .collect(),
    };
    let (tmin, tmax) = lanczos_bounds(&h, 12, 3);
    let (deg, nstates) = (20, 8);
    let (a, b, a0) = (tmin + 0.2 * (tmax - tmin), tmax, tmin - 1.0);
    let psi0 = random_subspace::<f64>(h.dim(), nstates, 3);
    let flops = chebyshev_filter_flops(&h, nstates, deg);
    let seed = time(3, || {
        let mut psi = psi0.clone();
        chebyshev_filter_seed(&seed_h, &mut psi, deg, a, b, a0);
    });
    let blocked = time(3, || {
        let mut psi = psi0.clone();
        chebyshev_filter(&h, &mut psi, deg, a, b, a0);
    });
    results.push(result(
        "chebyshev_filter",
        &format!("deg{deg} {nstates}states nd{}", h.dim()),
        flops,
        Some(seed),
        blocked,
    ));

    // One full ChFES cycle on the current code path, for wall-time context.
    let opts = ChfesOptions {
        cheb_degree: deg,
        block_size: 4,
        mixed_precision: false,
    };
    let chfes_s = time(3, || {
        let mut psi = psi0.clone();
        chfes(&h, &mut psi, (a0, a, b), &opts);
    });
    results.push(result(
        "chfes_cycle",
        &format!("deg{deg} {nstates}states bf4"),
        0,
        None,
        chfes_s,
    ));
}

fn bench_mlxc_mlp(results: &mut Vec<KernelResult>) {
    use dft_mlxc::nn::{BatchedMlp, Mlp};
    let net = Mlp::paper_architecture(3, 7);
    let np = 4096;
    let xs = Matrix::from_fn(3, np, |i, j| ((i * 17 + j * 3) as f64 * 0.01).sin());
    // 2 * n_in * n_out MACs-as-FLOPs per layer per point (bias/ELU omitted).
    let flops: u64 = net
        .layers
        .iter()
        .map(|l| 2 * (l.n_in * l.n_out * np) as u64)
        .sum();
    let cols: Vec<Vec<f64>> = (0..np).map(|j| xs.col(j).to_vec()).collect();
    let seed = time(5, || {
        let mut acc = 0.0;
        for x in &cols {
            acc += net.forward(x);
        }
        std::hint::black_box(acc);
    });
    let mut batched = BatchedMlp::new(&net);
    let mut out = Vec::new();
    let blocked = time(5, || {
        batched.forward_batch_into(&xs, &mut out);
        std::hint::black_box(out.last());
    });
    results.push(result(
        "mlxc_mlp",
        &format!("5x80 elu {np}pts"),
        flops,
        Some(seed),
        blocked,
    ));
}

/// Re-emit the autotuner's `B_f` sweep (paper Fig. 4) as bench entries so
/// the perf gate watches the CF block-size optimum too.
fn bench_cf_blocksize(results: &mut Vec<KernelResult>, tune: &dft_linalg::autotune::TuneReport) {
    for p in &tune.bf_sweep {
        let r = KernelResult {
            kernel: "cf_blocksize".to_string(),
            case: format!("bf{} p5 m216", p.bf),
            flops: 0,
            seed_seconds: None,
            seed_gflops: None,
            blocked_seconds: 0.0,
            blocked_gflops: Some(p.gflops),
            speedup: None,
        };
        println!("{:<16} {:<24} {:>38.2} GFLOPS", r.kernel, r.case, p.gflops);
        results.push(r);
    }
}

fn main() {
    let stdout_only = std::env::args().any(|a| a == "--stdout");
    section("Kernel before/after — blocked engine vs seed reference");
    let tier = dft_linalg::simd::active_tier();
    println!("SIMD tier: {}", tier.name());
    warm_up_cpu();
    let tune = dft_linalg::autotune::run_sweep();
    let (mc, kc, nc) = dft_linalg::autotune::blocking();
    println!(
        "autotuned blocking: MC={mc} KC={kc} NC={nc}  B_f={}  ({:.2} GFLOP/s at 384^3, profile -> {})",
        tune.profile.bf,
        tune.profile.gemm_mflops as f64 / 1e3,
        dft_linalg::autotune::tune_file_path().display()
    );
    let mut results = Vec::new();
    bench_gemm_f64(&mut results);
    bench_gemm_c64(&mut results);
    bench_batched_cell_gemm(&mut results);
    bench_apply_stiffness(&mut results);
    bench_chebyshev_filter(&mut results);
    bench_mlxc_mlp(&mut results);
    bench_cf_blocksize(&mut results, &tune);
    let report = BenchReport {
        note: format!(
            "seed = pre-optimization reference kernels (gemm_reference, \
             batched_gemm_reference, apply_stiffness_reference, clone-based \
             Chebyshev recurrence, per-point MLP matvec), same build flags as \
             the blocked engine; SIMD tier {} with autotuned blocking \
             MC={mc} KC={kc} NC={nc} B_f={}",
            tier.name(),
            tune.profile.bf
        ),
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    if stdout_only {
        println!("{json}");
    } else {
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!();
        println!("wrote BENCH_kernels.json");
    }
}
