//! Table 2: time-to-solution of the full YbCd quasicrystal ground state
//! (40,040 e-) on 1,120 Perlmutter nodes.
//!
//! Paper: initialization 69 s + 34 SCF steps = 2,023 s SCF, 2,092 s
//! total — a 40k-electron system at Level-4+ accuracy in ~30 minutes.

use dft_bench::{section, ybcd_quasicrystal};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    let sys = ybcd_quasicrystal();
    let cluster = ClusterSpec::new(MachineModel::perlmutter(), 1120);
    let opts = SolverOptions::default();
    let r = scf_step(&sys, &opts, &cluster);

    // The first SCF step runs multiple Chebyshev-filter passes (paper
    // footnote 8); model it as 4 extra CF-step equivalents.
    let t_cf = r.step("CF").seconds;
    let n_scf = 34.0;
    let extra_first = 4.0 * t_cf;
    let total_scf = n_scf * r.total_seconds + extra_first;
    // initialization: mesh + data structures; calibrated constant + a
    // bandwidth term for the initial field setup
    let init = 55.0 + 14.0 * (sys.dofs / 7.5e7) * (1120.0 / cluster.nodes as f64);

    section("Table 2 — YbCd quasicrystal time-to-solution, 1,120 Perlmutter nodes");
    println!("{:<18} {:>12} {:>12}", "", "model (s)", "paper (s)");
    println!("{:<18} {:>12.0} {:>12}", "Initialization", init, 69);
    println!(
        "{:<18} {:>12.0} {:>12}   (34 SCF steps, {:.1} s/SCF)",
        "Total SCF", total_scf, 2023, r.total_seconds
    );
    println!(
        "{:<18} {:>12.0} {:>12}",
        "Total run",
        init + total_scf,
        2092
    );
    println!();
    println!(
        "time-to-solution: {:.2e} s/GS/electron (paper headline: 3.3e-2)",
        (init + total_scf) / sys.supercell_electrons()
    );
}
