//! Sec. 5.3.1 ablation: the inverse-diagonal-Laplacian preconditioner of
//! the adjoint block-MINRES solve (paper: ~5x fewer iterations).
//!
//! This runs the REAL miniature inverse-DFT adjoint solves with and
//! without the preconditioner and also a standalone shifted FE system.

use dft_bench::pipeline::MiniSystem;
use dft_bench::section;
use dft_core::hamiltonian::KsHamiltonian;
use dft_core::scf::{scf, KPoint};
use dft_core::xc::SyntheticTruth;
use dft_invdft::{invert, InvDftConfig};
use dft_linalg::iterative::{block_minres, DiagonalPrec, IdentityPrec};
use dft_linalg::matrix::Matrix;

fn main() {
    section("Sec. 5.3.1 — adjoint MINRES preconditioning (real miniature solves)");
    let ms = &MiniSystem::training_set()[1];
    let space = ms.space();
    let sys = ms.atomic_system();
    println!("system: {} ({} DoF)", ms.name, space.ndofs());

    // standalone shifted solve on the real KS Hamiltonian
    let truth = scf(
        &space,
        &sys,
        &SyntheticTruth,
        &ms.scf_config(),
        &[KPoint::gamma()],
    );
    let h = KsHamiltonian::<f64>::new(&space, &truth.v_eff, [1.0; 3]);
    let nd = space.ndofs();
    let b = Matrix::from_fn(nd, 2, |i, j| ((i * 7 + j * 13) as f64 * 0.37).sin());
    let shifts = [truth.eigenvalues[0][0], truth.eigenvalues[0][1]];
    let kdiag = space.stiffness_diagonal();
    let s = space.inv_sqrt_mass();
    let lap: Vec<f64> = (0..nd)
        .map(|d| (0.5 * s[d] * s[d] * kdiag[d]).max(1e-3))
        .collect();
    let prec = DiagonalPrec::from_diagonal(&lap);

    let mut x0 = Matrix::zeros(nd, 2);
    let plain = block_minres(&h, &IdentityPrec, &shifts, &b, &mut x0, 1e-8, 4000);
    let mut x1 = Matrix::zeros(nd, 2);
    let precd = block_minres(&h, &prec, &shifts, &b, &mut x1, 1e-8, 4000);
    println!(
        "standalone shifted solve: {} iterations plain vs {} preconditioned ({:.1}x, paper ~5x)",
        plain.iterations,
        precd.iterations,
        plain.iterations as f64 / precd.iterations as f64
    );

    // embedded in the actual inverse-DFT loop
    let mk = |precondition: bool| InvDftConfig {
        n_states: ms.scf_config().n_states,
        max_iter: 5,
        tol: 1e-12,
        precondition,
        ..InvDftConfig::default()
    };
    let with = invert(&space, &sys, &truth.density, &mk(true));
    let without = invert(&space, &sys, &truth.density, &mk(false));
    println!(
        "inverse-DFT adjoint solves (5 outer iterations): {} vs {} MINRES iterations ({:.1}x)",
        without.minres_iterations,
        with.minres_iterations,
        without.minres_iterations as f64 / with.minres_iterations as f64
    );
}
