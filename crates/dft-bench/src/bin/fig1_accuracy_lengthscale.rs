//! Fig. 1: the accuracy / accessible-length-scale frontier.
//!
//! Levels 1-3 (DFT with LDA/GGA) scale to large systems but sit far from
//! quantum accuracy; Level 4+ (QMB) is quantum-accurate but hits a
//! combinatorial wall at O(10^3) electrons. DFT-FE-MLXC breaks the
//! trade-off. This binary measures both axes with the real solvers:
//!
//! * the QMB wall: FCI determinant dimension and solve time vs electrons
//!   (measured with the dft-qmb ladder + projected growth);
//! * the DFT cost: O(N^3) from the performance schedule;
//! * the accuracy axis: LDA/PBE/MLXC errors vs the hidden truth (the
//!   Fig. 3 machinery, quick settings).

use dft_bench::pipeline::{train_mlxc_from_invdft, MiniSystem, PipelineConfig};
use dft_bench::section;
use dft_core::scf::{scf, KPoint};
use dft_core::xc::{Lda, MlxcFunctional, Pbe, SyntheticTruth, XcFunctional};
use dft_qmb::scaling::{projected_fci_dimension, qmb_scaling_ladder};

fn main() {
    section("Fig. 1 — the QMB wall (measured FCI ladder)");
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>16}",
        "system", "electrons", "determinants", "solve (s)", "E (Ha)"
    );
    for p in qmb_scaling_ladder(8, 121, 20.0) {
        println!(
            "{:<8} {:>10} {:>14} {:>12.3} {:>16.6}",
            p.name, p.electrons, p.dimension, p.solve_seconds, p.energy
        );
    }
    println!();
    println!("projected FCI dimension (2 orbitals/electron):");
    for n in [2usize, 4, 8, 12, 16, 20] {
        println!(
            "  N = {n:>3} electrons  ->  dim ~ {:.3e}",
            projected_fci_dimension(n)
        );
    }
    println!("  => exponential wall at O(10-10^3) electrons (paper Fig. 1, Level 4+)");

    section("Fig. 1 — DFT cost scaling O(N^3) (schedule model, Frontier 100 nodes)");
    use dft_hpc::machine::{ClusterSpec, MachineModel};
    use dft_hpc::schedule::{scf_step, DftSystemSpec, SolverOptions};
    let cluster = ClusterSpec::new(MachineModel::frontier(), 100);
    let mut prev: Option<f64> = None;
    for electrons in [1.0e4, 2.0e4, 4.0e4, 8.0e4] {
        let sys = DftSystemSpec::new(
            "scaling",
            electrons / 20.0,
            electrons,
            electrons * 1800.0,
            1,
            false,
            8,
        );
        let r = scf_step(&sys, &SolverOptions::default(), &cluster);
        let note = prev.map_or(String::new(), |p| {
            format!("  (x{:.1} per 2x electrons)", r.total_seconds / p)
        });
        println!(
            "  N = {electrons:>9.0} e-   t/SCF = {:>9.1} s{note}",
            r.total_seconds
        );
        prev = Some(r.total_seconds);
    }

    section("Fig. 1 — accuracy ladder vs hidden truth (miniature, real SCF)");
    let cfg = PipelineConfig {
        invdft_iters: 40,
        epochs: 250,
        ..PipelineConfig::default()
    };
    let (model, _, _) = train_mlxc_from_invdft(&MiniSystem::training_set()[..2], &cfg);
    let mlxc = MlxcFunctional::new(model);
    let funcs: [(&str, &dyn XcFunctional); 3] = [
        ("Level 1  LDA", &Lda),
        ("Level 2  PBE", &Pbe),
        ("Level 4+ MLXC", &mlxc),
    ];
    let ms = &MiniSystem::test_set()[0];
    let space = ms.space();
    let sys = ms.atomic_system();
    let truth = scf(
        &space,
        &sys,
        &SyntheticTruth,
        &ms.scf_config(),
        &[KPoint::gamma()],
    );
    for (name, f) in funcs {
        let r = scf(&space, &sys, f, &ms.scf_config(), &[KPoint::gamma()]);
        println!(
            "  {name:<14} |E - E_truth| = {:>8.2} mHa/atom",
            (r.energy.free_energy - truth.energy.free_energy).abs() * 1000.0
                / ms.atoms.len() as f64
        );
    }
}
