//! Perf-regression gate over `BENCH_kernels.json` artifacts.
//!
//! Compares a committed baseline against a freshly measured candidate and
//! fails (exit code 1) when any kernel/case loses more than the tolerated
//! fraction of its `blocked_gflops` throughput — the CI tripwire against
//! quietly reverting the SIMD microkernel engine to scalar code.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--tol 0.15]
//! ```
//!
//! A case present in the baseline but missing from the candidate is a
//! failure too (a silently dropped benchmark would otherwise dodge the
//! gate). New candidate-only cases are reported but never fail. CI can skip
//! the whole gate with `DFT_BENCH_GATE=off` (see `scripts/ci.sh`) — e.g. on
//! a loaded machine where timings are meaningless.

use serde_json::Value;
use std::process::ExitCode;

struct Case {
    kernel: String,
    case: String,
    gflops: f64,
}

fn load_cases(path: &str) -> Vec<Case> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let root: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_gate: {path} is not valid JSON: {e}"));
    let results = root
        .get("results")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("bench_gate: {path} has no `results` array"));
    results
        .iter()
        .filter_map(|r| {
            let gflops = r.get("blocked_gflops")?.as_f64()?;
            if gflops <= 0.0 {
                return None;
            }
            Some(Case {
                kernel: r.get("kernel")?.as_str()?.to_string(),
                case: r.get("case")?.as_str()?.to_string(),
                gflops,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tol = 0.15f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tol" {
            let v = it.next().expect("bench_gate: --tol needs a value");
            tol = v.parse().expect("bench_gate: --tol must be a number");
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json> [--tol 0.15]");
        return ExitCode::from(2);
    };

    let baseline = load_cases(baseline_path);
    let candidate = load_cases(candidate_path);
    println!(
        "bench_gate: {} baseline cases vs {} candidate cases, tolerance {:.0}%",
        baseline.len(),
        candidate.len(),
        tol * 100.0
    );

    let mut failures = 0usize;
    for b in &baseline {
        let key = format!("{:<16} {:<24}", b.kernel, b.case);
        match candidate
            .iter()
            .find(|c| c.kernel == b.kernel && c.case == b.case)
        {
            None => {
                println!(
                    "{key} MISSING from candidate (baseline {:.2} GFLOP/s)",
                    b.gflops
                );
                failures += 1;
            }
            Some(c) => {
                let ratio = c.gflops / b.gflops;
                let ok = ratio >= 1.0 - tol;
                println!(
                    "{key} {:>8.2} -> {:>8.2} GFLOP/s  ({:+6.1}%)  {}",
                    b.gflops,
                    c.gflops,
                    (ratio - 1.0) * 100.0,
                    if ok { "ok" } else { "REGRESSION" }
                );
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    for c in &candidate {
        if !baseline
            .iter()
            .any(|b| b.kernel == c.kernel && b.case == c.case)
        {
            println!(
                "{:<16} {:<24} new case ({:.2} GFLOP/s), not gated",
                c.kernel, c.case, c.gflops
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_gate: FAILED — {failures} case(s) regressed more than {:.0}% \
             (rerun on an idle machine, or set DFT_BENCH_GATE=off to skip)",
            tol * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_gate: ok");
        ExitCode::SUCCESS
    }
}
