//! Fig. 7: strong scaling of the GPU-accelerated invDFT on Perlmutter.
//!
//! Paper: ortho-benzyne (C6H4, all-electron, strongly correlated), 104 s
//! per outer iteration on 4 nodes -> 20 s on 32 nodes (5.2x over 8x
//! nodes); 17.7x CPU->GPU speedup; whole exact-XC-potential evaluation in
//! ~3 h (50x faster than the previous implementation's ~7 days).

use dft_bench::section;
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{invdft_iteration, DftSystemSpec, SolverOptions};

fn main() {
    // all-electron molecular problem: modest electron count, huge spectral
    // width -> very high Chebyshev degree; ~6e7 adaptive FE DoF
    let sys = DftSystemSpec::new("ortho-benzyne C6H4 (AE)", 10.0, 40.0, 7.0e7, 1, false, 7);
    let opts = SolverOptions::default();
    let cheb_ae = 1000.0;
    let minres = 60.0;
    let overhead = 0.01;

    section("Fig. 7 — invDFT strong scaling on Perlmutter (s/iteration)");
    let mut t4 = 0.0;
    for nodes in [4usize, 8, 16, 32] {
        let t = invdft_iteration(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::perlmutter(), nodes),
            cheb_ae,
            minres,
            overhead,
        );
        if nodes == 4 {
            t4 = t;
        }
        println!("  {nodes:>3} nodes   {t:>8.1} s/iteration");
    }
    let t32 = invdft_iteration(
        &sys,
        &opts,
        &ClusterSpec::new(MachineModel::perlmutter(), 32),
        cheb_ae,
        minres,
        overhead,
    );
    println!();
    println!("paper: 104 s @ 4 nodes -> 20 s @ 32 nodes (5.2x)");
    println!("model: {t4:.0} s -> {t32:.0} s  ({:.1}x)", t4 / t32);
    let full = 550.0 * t32 / 3600.0;
    println!(
        "550-iteration exact-XC-potential evaluation at 32 nodes: ~{full:.1} h (paper: ~3 h, 50x \
         faster than the 7-day previous implementation)"
    );

    // CPU->GPU: a 64-core EPYC node sustains ~2 TFLOPS FP64 vs 4 A100s at
    // ~39 TFLOPS vector peak; with GPU efficiencies the paper measured
    // 17.7x in node-hours.
    let cpu_node_tflops = 2.2;
    let gpu_share = t4; // 4 GPU nodes
    let cpu_est = gpu_share * (4.0 * MachineModel::perlmutter().node_peak_tflops() * 0.45)
        / (4.0 * cpu_node_tflops * 0.8);
    println!(
        "CPU->GPU speedup estimate (node-hours): {:.1}x (paper: 17.7x)",
        cpu_est / gpu_share
    );
}
