//! Burst-traffic benchmark of the `dft-serve` multi-tenant job server,
//! emitting `BENCH_serve.json`.
//!
//! The burst pushes 512 miniature jobs from four tenants through a
//! four-slot rank pool: one job carries a rank-kill fault plan (recovery
//! must shrink the pool and reconverge), three long `Low`-priority
//! relaxations saturate the pool so a `High` submission forces a
//! checkpoint/preempt/resume cycle, and the remaining jobs cycle over
//! eight distinct structures so the converged-state cache serves most of
//! them warm. Every served single-SCF energy is compared against a
//! dedicated single-job run of the same structure.
//!
//! Flags:
//! - `--stdout`         print the JSON instead of writing `BENCH_serve.json`
//! - `--check [path]`   validate an existing artifact (CI mode; exits
//!   nonzero on schema or invariant violations)

use dft_bench::section;
use dft_bench::serve::{
    ServeAccuracy, ServeBench, ServeCacheStats, ServeDisruptions, ServeLatency, ServeSetup,
    ServeTraffic,
};
use dft_core::system::{Atom, AtomKind};
use dft_hpc::comm::FaultPlan;
use dft_serve::{
    DftServer, JobKind, JobOutcome, JobRequest, JobSpec, JobStatus, JobTicket, Priority,
    ServerConfig,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const POOL_RANKS: usize = 4;
const TOTAL_JOBS: usize = 512;
const VARIANTS: usize = 8;
const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];
const CHECKPOINT_EVERY: usize = 2;
const TIMEOUT: Duration = Duration::from_millis(1500);
/// Background relaxations long enough to still be running when the
/// preempting `High` job arrives.
const RELAX_STEPS: usize = 150;

/// Distinct single-atom problems: the atom slides along x, so each variant
/// is a physically different structure with its own cache-key class.
fn mini_spec(variant: usize) -> JobSpec {
    let off = variant as f64 * 0.15;
    JobSpec::miniature(
        vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [2.0 + off, 3.0, 3.0],
        }],
        6.0,
    )
}

/// A stretched diatomic whose relaxation occupies a rank slot for a long,
/// controllable stretch — the preemption fodder.
fn diatomic_spec() -> JobSpec {
    JobSpec::miniature(
        vec![
            Atom {
                kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                pos: [2.2, 3.0, 3.0],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                pos: [3.8, 3.0, 3.0],
            },
        ],
        6.0,
    )
}

fn fresh_root(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dft-bench-serve-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn check(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let report: ServeBench =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    match report.validate() {
        Ok(()) => {
            println!("{path}: schema and invariants OK");
            std::process::exit(0)
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        check(
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or("BENCH_serve.json"),
        );
    }
    let stdout_only = args.iter().any(|a| a == "--stdout");

    section("Dedicated single-job references (one per distinct structure)");
    let mut ref_cfg = ServerConfig::new(fresh_root("reference"));
    ref_cfg.pool_ranks = 2;
    let ref_server = DftServer::start(ref_cfg).expect("start reference server");
    let mut reference = [0.0f64; VARIANTS];
    for (v, e) in reference.iter_mut().enumerate() {
        let out = ref_server
            .submit(JobRequest::new(
                "reference",
                Priority::Normal,
                JobKind::Scf,
                mini_spec(v),
            ))
            .expect("admit reference")
            .wait()
            .expect("reference outcome");
        assert_eq!(out.status, JobStatus::Completed, "reference {v} failed");
        assert!(out.converged, "reference {v} did not converge");
        *e = out.free_energy;
        println!(
            "structure {v}: E = {:+.10} Ha ({} iters)",
            e, out.scf_iterations
        );
    }
    ref_server.drain();

    section(
        format!(
            "Burst: {TOTAL_JOBS} jobs, {POOL_RANKS}-slot pool, {} tenants",
            TENANTS.len()
        )
        .as_str(),
    );
    let mut cfg = ServerConfig::new(fresh_root("burst"));
    cfg.pool_ranks = POOL_RANKS;
    cfg.checkpoint_every = CHECKPOINT_EVERY;
    cfg.timeout = TIMEOUT;
    // unreachable force tolerance: the background relaxations run all of
    // their steps, staying long-lived enough to be preemption targets
    cfg.relax_force_tol = 0.0;
    let server = DftServer::start(cfg).expect("start burst server");
    let t0 = Instant::now();

    // outcome collection: (variant for energy parity; None = relaxation)
    let mut tickets: Vec<(Option<usize>, JobTicket)> = Vec::with_capacity(TOTAL_JOBS);

    // 1. the injected rank kill: a two-rank gang whose rank 1 dies at SCF
    //    iteration 3; recovery relaunches the survivor from its snapshot
    //    and the dead rank is burned from the pool
    let mut kill_spec = mini_spec(0);
    kill_spec.ranks = 2;
    let kill_ticket = server
        .submit(
            JobRequest::new("alice", Priority::Normal, JobKind::Scf, kill_spec)
                .with_faults(FaultPlan::kill_at_epoch(1, 3)),
        )
        .expect("admit kill job");
    let kill_out = kill_ticket.wait().expect("kill job outcome");
    assert_eq!(kill_out.status, JobStatus::Completed, "kill job failed");
    assert!(kill_out.recoveries >= 1, "kill never forced a relaunch");
    println!(
        "kill job: {} recovery, {} rank lost, E = {:+.10} Ha",
        kill_out.recoveries, kill_out.ranks_lost, kill_out.free_energy
    );

    // 2. force a preemption: fill every remaining slot with long Low
    //    relaxations, then submit a High job into the saturated pool
    let mut relax_tickets = Vec::new();
    for t in &TENANTS[..3] {
        relax_tickets.push(
            server
                .submit(JobRequest::new(
                    t,
                    Priority::Low,
                    JobKind::Relax { steps: RELAX_STEPS },
                    diatomic_spec(),
                ))
                .expect("admit background relaxation"),
        );
    }
    std::thread::sleep(Duration::from_millis(150)); // let them occupy the pool
    let urgent = server
        .submit(JobRequest::new(
            "dave",
            Priority::High,
            JobKind::Scf,
            mini_spec(1),
        ))
        .expect("admit urgent job");
    let urgent_out = urgent.wait().expect("urgent outcome");
    assert_eq!(urgent_out.status, JobStatus::Completed, "urgent job failed");
    println!(
        "urgent High job served in {:.0} ms through a saturated pool",
        urgent_out.latency_ms
    );

    // 3. the main burst: everything else cycles tenants and structures
    let already = 2 + relax_tickets.len();
    for i in 0..TOTAL_JOBS - already {
        let v = i % VARIANTS;
        let req = JobRequest::new(
            TENANTS[i % TENANTS.len()],
            Priority::Normal,
            JobKind::Scf,
            mini_spec(v),
        );
        tickets.push((Some(v), server.submit(req).expect("admit burst job")));
    }
    println!("{} burst jobs queued", tickets.len());

    // collect every outcome; admitted jobs must never be lost
    let mut outcomes: Vec<(Option<usize>, JobOutcome)> = Vec::with_capacity(TOTAL_JOBS);
    outcomes.push((Some(0), kill_out));
    outcomes.push((Some(1), urgent_out));
    let mut lost = 0usize;
    for (v, t) in tickets {
        match t.wait() {
            Some(out) => outcomes.push((v, out)),
            None => lost += 1,
        }
    }
    for t in relax_tickets {
        match t.wait() {
            Some(out) => outcomes.push((None, out)),
            None => lost += 1,
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = server.drain();

    section("Accounting");
    let completed = outcomes
        .iter()
        .filter(|(_, o)| o.status == JobStatus::Completed)
        .count();
    let failed = outcomes.len() - completed;
    let mut latencies: Vec<f64> = outcomes.iter().map(|(_, o)| o.latency_ms).collect();
    latencies.sort_by(f64::total_cmp);

    // cold/warm iteration split and energy parity over the single-SCF jobs
    let (mut cold_n, mut cold_sum, mut warm_n, mut warm_sum) = (0usize, 0usize, 0usize, 0usize);
    let mut max_de = 0.0f64;
    let mut compared = 0usize;
    for (variant, out) in &outcomes {
        let Some(v) = variant else { continue };
        if out.cache_hit {
            warm_n += 1;
            warm_sum += out.scf_iterations;
        } else {
            cold_n += 1;
            cold_sum += out.scf_iterations;
        }
        let de = (out.free_energy - reference[*v]).abs();
        max_de = max_de.max(de);
        compared += 1;
    }
    let cold_mean = cold_sum as f64 / cold_n.max(1) as f64;
    let warm_mean = warm_sum as f64 / warm_n.max(1) as f64;

    let bench = ServeBench {
        note: "threaded MPI stand-in (ranks = threads); 512 miniature LDA jobs over 8 \
               single-atom structures plus 3 background diatomic relaxations; one injected \
               rank kill (detected by the 1.5 s receive deadline, survivor resumes from \
               snapshot, dead rank burned from the pool) and one forced preemption of a \
               Low relaxation by a High submission into the saturated pool; warm starts \
               resume from donor jobs' exported converged snapshots; energies are free \
               energies compared against dedicated single-job solves"
            .to_string(),
        setup: ServeSetup {
            pool_ranks: POOL_RANKS,
            tenants: TENANTS.len(),
            distinct_problems: VARIANTS,
            checkpoint_every: CHECKPOINT_EVERY,
            timeout_seconds: TIMEOUT.as_secs_f64(),
        },
        traffic: ServeTraffic {
            submitted: outcomes.len() + lost,
            completed,
            failed,
            lost,
            max_queue_depth: stats.max_queue_depth,
        },
        latency: ServeLatency {
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
            max_ms: *latencies.last().expect("nonempty burst"),
            wall_seconds: wall,
            throughput_jobs_per_s: completed as f64 / wall,
        },
        cache: ServeCacheStats {
            hits: stats.cache_hits,
            misses: stats.cache_misses,
            spaces_built: stats.spaces_built,
            cold_jobs: cold_n,
            warm_jobs: warm_n,
            cold_iterations_mean: cold_mean,
            warm_iterations_mean: warm_mean,
            warm_over_cold_percent: 100.0 * warm_mean / cold_mean,
        },
        disruptions: ServeDisruptions {
            injected_kills: 1,
            recoveries: stats.recoveries,
            ranks_burned: stats.ranks_burned,
            preemptions: stats.preemptions,
        },
        accuracy: ServeAccuracy {
            reference_jobs: VARIANTS,
            compared_jobs: compared,
            max_abs_energy_diff_ha: max_de,
        },
    };

    println!(
        "{} completed / {} failed / {} lost in {:.2} s ({:.0} jobs/s)",
        completed, failed, lost, wall, bench.latency.throughput_jobs_per_s
    );
    println!(
        "latency p50 = {:.0} ms, p99 = {:.0} ms, max = {:.0} ms",
        bench.latency.p50_ms, bench.latency.p99_ms, bench.latency.max_ms
    );
    println!(
        "cache: {} hits / {} misses, cold mean {:.1} iters, warm mean {:.1} iters ({:.1}%)",
        bench.cache.hits,
        bench.cache.misses,
        cold_mean,
        warm_mean,
        bench.cache.warm_over_cold_percent
    );
    println!(
        "disruptions: {} recoveries, {} rank burned, {} preemptions",
        bench.disruptions.recoveries, bench.disruptions.ranks_burned, bench.disruptions.preemptions
    );
    println!(
        "energy parity: max |dE| = {:.3e} Ha over {} served jobs",
        max_de, compared
    );

    bench
        .validate()
        .expect("emitted report must satisfy its own schema");
    let json = serde_json::to_string_pretty(&bench).expect("serializable");
    if stdout_only {
        println!("{json}");
    } else {
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!();
        println!("wrote BENCH_serve.json");
    }
}
