//! Table 1: state of the art across the accuracy ladder.
//!
//! Literature rows are reproduced verbatim from the paper (they are cited
//! measurements, not something we can re-run); the DFT-FE-MLXC rows come
//! from this reproduction's performance schedules.

use dft_bench::{section, twin_disloc_mg_y_a, twin_disloc_mg_y_c};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    section("Table 1 — state of the art (literature rows as cited in the paper)");
    let lit = [
        (
            "L1",
            "RSDFT (2011)",
            "FD/PSP",
            "Si nanowire 107K atoms, 430K e-",
            "K, 450K cores",
            "73.6 / SCF",
            "7.1 (43.6%)",
        ),
        (
            "L1",
            "QBox (2008)",
            "PW/PSP",
            "Mo 1K atoms x8 k-pts (96K e-)",
            "BlueGene/L 125K cores",
            "8.8 / SCF",
            "0.2 (56.5%)",
        ),
        (
            "L2",
            "DFT-FE (2019)",
            "FE/AE+PSP",
            "Mg dislocation 10K atoms, 100K e-",
            "Summit 22,800 GPUs",
            "2.4 / SCF",
            "46 (27.8%)",
        ),
        (
            "L2",
            "PARSEC (2023)",
            "FD/PSP",
            "Si nanocluster 100K atoms, 400K e-",
            "Frontera 115K cores",
            "2,808 / GS",
            "-",
        ),
        (
            "L3",
            "Hybrid/ACE (2017)",
            "PW/PSP",
            "Si bulk 4,096 atoms, 16K e-",
            "Cori-KNL 8K cores",
            "30 / SCF",
            "-",
        ),
        (
            "L4+",
            "QMCPACK (2018)",
            "PW/PSP",
            "NiO 128 atoms, 1,536 e-",
            "Titan 18,000 GPUs",
            "294.7 / GS",
            "-",
        ),
        (
            "L4+",
            "LNO-CCSD(T) (2019)",
            "Gaussian/AE",
            "protein 1,023 atoms, 3,980 e-",
            "Xeon 6 cores",
            "26,064 / GS",
            "-",
        ),
        (
            "L4+",
            "MCSCF NWChem (2017)",
            "Gaussian/AE",
            "Cr trimer, 72 e-",
            "Cori 2,048 cores",
            "57.8 / SCF",
            "-",
        ),
    ];
    for (lvl, work, basis, system, machine, wall, pflops) in lit {
        println!("{lvl:<4} {work:<20} {basis:<12} {system:<36} {machine:<24} {wall:<12} {pflops}");
    }

    section("This work (DFT-FE-MLXC, simulated Frontier)");
    let opts = SolverOptions {
        gpu_aware: false,
        ..SolverOptions::default()
    };
    for (sys, nodes, paper_wall, paper_pflops) in [
        (
            twin_disloc_mg_y_a(),
            2400usize,
            "3.7 min/SCF",
            "226.3 (49.3%)",
        ),
        (twin_disloc_mg_y_c(), 8000, "8.6 min/SCF", "659.7 (43.1%)"),
    ] {
        let r = scf_step(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), nodes),
        );
        println!(
            "L4+  DFT-FE-MLXC         FE/AE+PSP    {:<36} Frontier {:>6} GCDs      {:>5.1} min/SCF  {:>6.1} ({:.1}%)   [paper: {} | {}]",
            format!("{} ({:.0}K e- supercell)", r.system, sys.supercell_electrons() / 1000.0),
            nodes * 8,
            r.total_seconds / 60.0,
            r.sustained_pflops(),
            100.0 * r.efficiency(),
            paper_wall,
            paper_pflops
        );
    }
    println!();
    println!("headline: >100x the system size of QMB methods at commensurate accuracy,");
    println!("10x the previous sustained-PFLOPS watermark for ab initio ground states.");
}
