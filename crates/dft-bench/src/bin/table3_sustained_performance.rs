//! Table 3: wall-time and sustained performance for one SCF iteration of
//! TwinDislocMgY(A)/(B)/(C) on Frontier, with the per-step breakdown.
//!
//! Paper targets: 226.3 PFLOPS (49.3%) @ 2,400 nodes, 508.9 (44.4%) @
//! 6,000, 659.7 (43.1%) @ 8,000 — the Gordon-Bell headline numbers.

use dft_bench::{section, twin_disloc_mg_y_a, twin_disloc_mg_y_b, twin_disloc_mg_y_c};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    // the paper's large runs could not use optimal GPU-aware routing
    let opts = SolverOptions {
        gpu_aware: false,
        ..SolverOptions::default()
    };
    let cases = [
        (twin_disloc_mg_y_a(), 2400usize, (223.0, 226.3, 49.3)),
        (twin_disloc_mg_y_b(), 6000, (499.4, 508.9, 44.4)),
        (twin_disloc_mg_y_c(), 8000, (513.7, 659.7, 43.1)),
    ];

    section("Table 3 — sustained performance (simulated Frontier)");
    println!(
        "{:<20} {:>7} {:>12} {:>14} {:>10}   paper: time / PFLOPS / %",
        "system", "nodes", "time (s)", "PFLOP", "PFLOPS(%)"
    );
    let mut reports = Vec::new();
    for (sys, nodes, paper) in &cases {
        let r = scf_step(
            sys,
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), *nodes),
        );
        println!(
            "{:<20} {:>7} {:>12.1} {:>14.1} {:>6.1} ({:>4.1}%)   {} / {} / {}%",
            r.system,
            r.nodes,
            r.total_seconds,
            r.total_pflop,
            r.sustained_pflops(),
            100.0 * r.efficiency(),
            paper.0,
            paper.1,
            paper.2
        );
        reports.push(r);
    }

    for (label, idx) in [("TwinDislocMgY(A)", 0usize), ("TwinDislocMgY(C)", 2)] {
        section(&format!("Breakdown for {label}"));
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>8}",
            "step", "time (s)", "PFLOP", "PFLOPS", "% peak"
        );
        let r = &reports[idx];
        for s in &r.steps {
            match s.pflop {
                Some(f) => println!(
                    "{:<14} {:>10.1} {:>12.1} {:>12.1} {:>7.1}%",
                    s.name,
                    s.seconds,
                    f,
                    s.pflops(),
                    100.0 * s.pflops() / r.peak_pflops
                ),
                None => println!(
                    "{:<14} {:>10.1} {:>12} {:>12} {:>8}",
                    s.name, s.seconds, "-", "-", "-"
                ),
            }
        }
    }
    println!();
    println!(
        "Shape checks: C > B > A in sustained PFLOPS: {} > {} > {}",
        reports[2].sustained_pflops() as i64,
        reports[1].sustained_pflops() as i64,
        reports[0].sustained_pflops() as i64
    );
}
