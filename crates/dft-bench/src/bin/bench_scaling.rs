//! Distributed SCF strong-scaling benchmark: the domain-decomposed ChFES of
//! `dft-parallel` at 1/2/4/8 ranks on a miniature periodic system, emitting
//! `BENCH_scaling.json` (schema in `dft_bench::scaling`):
//!
//! * wall seconds per ChFES phase (critical path over ranks) and speedup
//!   per rank count, with the converged energy checked to agree across all
//!   rank counts;
//! * cluster communication volume split by wire precision;
//! * the FP64 vs FP32 boundary-wire comparison: converged energies, SCF
//!   communication volumes, and the ghost-exchange bytes of one Hamiltonian
//!   apply at each precision (FP32 must be exactly half).
//!
//! Flags: `--stdout` prints the JSON instead of writing the file;
//! `--check [path]` validates an existing artifact against the schema and
//! exits nonzero on violation (used by CI).

use dft_bench::scaling::{
    CommBytes, GridRun, OverlapComparison, PhaseSeconds, RankRun, ScalingReport,
    SubspaceFp32Ablation, SystemCard, WireComparison, CHFES_PHASES,
};
use dft_bench::section;
use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{run_cluster, CommStats, WirePrecision};
use dft_linalg::matrix::Matrix;
use dft_parallel::{
    distributed_scf, DistHamiltonian, DistScfConfig, DistSpace, GridShape, SharedComm,
};
use std::sync::atomic::Ordering;
use std::time::Instant;

fn bench_system() -> (FeSpace, AtomicSystem) {
    // 8 cells -> usable at 1/2/4/8 ranks; one soft pseudo atom, all-periodic
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

fn bench_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        profile: true,
        ..ScfConfig::default()
    }
}

fn comm_bytes(stats: &CommStats) -> CommBytes {
    let (bytes_total, messages, bytes_fp64, bytes_fp32) = stats.snapshot();
    CommBytes {
        bytes_total,
        messages,
        bytes_fp64,
        bytes_fp32,
    }
}

/// One distributed SCF at `nranks`; returns the scaling entry (speedup
/// filled in by the caller), the converged free energy, and the seconds
/// ranks spent blocked on ghost-row receives.
fn scf_run(
    space: &FeSpace,
    sys: &AtomicSystem,
    dcfg: &DistScfConfig,
    nranks: usize,
    kpts: &[KPoint],
) -> (RankRun, f64, f64) {
    let t0 = Instant::now();
    let (results, stats) = run_cluster(nranks, |comm| {
        distributed_scf(comm, space, sys, &Lda, dcfg, kpts).expect("scf")
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let r0 = &results[0];
    assert!(r0.converged, "{nranks}-rank SCF did not converge");
    // critical path per phase: slowest rank
    let chfes_phase_seconds = CHFES_PHASES
        .iter()
        .map(|&label| PhaseSeconds {
            phase: label.to_string(),
            seconds: results
                .iter()
                .map(|r| r.profile.as_ref().expect("profiled").phase_seconds(label))
                .fold(0.0, f64::max),
        })
        .collect();
    let shape = dcfg.grid.unwrap_or_else(|| GridShape::slab(nranks));
    let ghost_wait = stats.ghost_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
    let run = RankRun {
        nranks,
        grid: Some(shape.to_string()),
        wall_seconds,
        speedup_vs_1rank: 0.0,
        free_energy_ha: r0.energy.free_energy,
        iterations: r0.iterations,
        converged: r0.converged,
        chfes_phase_seconds,
        comm: comm_bytes(&stats),
    };
    (run, r0.energy.free_energy, ghost_wait)
}

/// The `CholGS-S` + `RR-P` critical path — the subspace-reduction seconds
/// band parallelism splits.
fn reduction_seconds(run: &RankRun) -> f64 {
    run.chfes_phase_seconds
        .iter()
        .filter(|p| p.phase == "CholGS-S" || p.phase == "RR-P")
        .map(|p| p.seconds)
        .sum()
}

/// Ghost-exchange bytes of ONE distributed Hamiltonian apply at `wire`:
/// the run does nothing else, so the cluster byte total IS the exchange.
fn ghost_apply_bytes(space: &FeSpace, nranks: usize, wire: WirePrecision) -> u64 {
    let v_eff = vec![0.1; space.nnodes()];
    let ncols = 4;
    let (_, stats) = run_cluster(nranks, |comm| {
        let dist = DistSpace::new(space, comm.rank(), comm.size());
        let shared = SharedComm::new(comm);
        let h = DistHamiltonian::<f64>::new(&dist, &shared, &v_eff, [1.0; 3], wire);
        let x = Matrix::<f64>::from_fn(dist.dec.n_owned(), ncols, |i, j| {
            ((dist.dec.owned[i] as usize * 7 + j * 3) as f64 * 0.29).sin()
        });
        let mut y = Matrix::<f64>::zeros(dist.dec.n_owned(), ncols);
        use dft_linalg::iterative::LinearOperator;
        h.apply(&x, &mut y);
        y.col(0)[0]
    });
    stats.snapshot().0
}

fn check(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let report: ScalingReport =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    match report.validate() {
        Ok(()) => {
            println!(
                "{path}: schema and invariants OK ({} runs)",
                report.runs.len()
            );
            std::process::exit(0)
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        check(
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or("BENCH_scaling.json"),
        );
    }
    let stdout_only = args.iter().any(|a| a == "--stdout");

    section("Distributed ChFES strong scaling — 1/2/4/8 ranks");
    let (space, sys) = bench_system();
    let cfg = bench_cfg();
    let system = SystemCard {
        description: "periodic 6.0 Bohr cube, 2^3 cells, p=3, one Z=2 pseudo atom, LDA, Γ"
            .to_string(),
        ndofs: space.ndofs(),
        nnodes: space.nnodes(),
        ncells: space.cells().len(),
        n_states: cfg.n_states,
        n_electrons: sys.n_electrons(),
    };
    println!(
        "system: {} DoFs, {} cells, {} states",
        system.ndofs, system.ncells, system.n_states
    );

    let dcfg64 = DistScfConfig::new(cfg.clone()).with_wire(WirePrecision::Fp64);
    let mut runs: Vec<RankRun> = Vec::new();
    for nranks in [1usize, 2, 4, 8] {
        let (mut run, energy, _) = scf_run(&space, &sys, &dcfg64, nranks, &[KPoint::gamma()]);
        run.speedup_vs_1rank = if runs.is_empty() {
            1.0
        } else {
            runs[0].wall_seconds / run.wall_seconds
        };
        println!(
            "{nranks} rank(s): {:>8.3} s  speedup {:>5.2}x  E = {energy:+.10} Ha  {} iters  \
             {} msgs / {} B on the wire",
            run.wall_seconds,
            run.speedup_vs_1rank,
            run.iterations,
            run.comm.messages,
            run.comm.bytes_total
        );
        runs.push(run);
    }

    section("FP32 boundary wire vs FP64 — 4 ranks");
    let dcfg32 = DistScfConfig::new(cfg.clone()).with_wire(WirePrecision::Fp32);
    let (run32, e32, _) = scf_run(&space, &sys, &dcfg32, 4, &[KPoint::gamma()]);
    let run64 = runs.iter().find(|r| r.nranks == 4).expect("4-rank run");
    let wire = WireComparison {
        nranks: 4,
        free_energy_fp64_ha: run64.free_energy_ha,
        free_energy_fp32_wire_ha: e32,
        abs_energy_diff_ha: (run64.free_energy_ha - e32).abs(),
        scf_comm_fp64: run64.comm,
        scf_comm_fp32: run32.comm,
        ghost_apply_bytes_fp64: ghost_apply_bytes(&space, 4, WirePrecision::Fp64),
        ghost_apply_bytes_fp32: ghost_apply_bytes(&space, 4, WirePrecision::Fp32),
    };
    println!(
        "E(fp64) = {:+.10} Ha   E(fp32 wire) = {:+.10} Ha   |diff| = {:.3e} Ha",
        wire.free_energy_fp64_ha, wire.free_energy_fp32_wire_ha, wire.abs_energy_diff_ha
    );
    println!(
        "ghost exchange per apply: {} B (fp64) vs {} B (fp32) — exactly half; \
         SCF totals {} B vs {} B",
        wire.ghost_apply_bytes_fp64,
        wire.ghost_apply_bytes_fp32,
        wire.scf_comm_fp64.bytes_total,
        wire.scf_comm_fp32.bytes_total
    );

    section("Process-grid layouts — 8 ranks reshaped as 8x1x1 / 4x2x1 / 2x2x2");
    // two k-points so the k-group axis has work, and a wider subspace (16
    // states) so the O(N^2)-per-state CholGS/RR reductions are visible
    // enough for band-splitting to show; same problem at every layout, so
    // phase seconds are comparable and the energy must not move
    let cfg_grid = ScfConfig {
        n_states: 16,
        ..cfg.clone()
    };
    let kpts2 = vec![
        KPoint {
            frac: [0.0; 3],
            weight: 0.5,
        },
        KPoint {
            frac: [0.25, 0.0, 0.0],
            weight: 0.5,
        },
    ];
    let mut grid_runs: Vec<GridRun> = Vec::new();
    for shape in [
        GridShape::new(8, 1, 1),
        GridShape::new(4, 2, 1),
        GridShape::new(2, 2, 2),
    ] {
        let dcfg = DistScfConfig::new(cfg_grid.clone()).with_grid(shape);
        let (run, energy, _) = scf_run(&space, &sys, &dcfg, 8, &kpts2);
        let red = reduction_seconds(&run);
        println!(
            "{shape}: {:>8.3} s wall, {:>7.4} s CholGS-S + RR-P, E = {energy:+.10} Ha, \
             {} B on the wire",
            run.wall_seconds, red, run.comm.bytes_total
        );
        grid_runs.push(GridRun {
            grid: shape.to_string(),
            nranks: 8,
            wall_seconds: run.wall_seconds,
            free_energy_ha: run.free_energy_ha,
            converged: run.converged,
            reduction_seconds: red,
            chfes_phase_seconds: run.chfes_phase_seconds,
            comm: run.comm,
        });
    }

    section("Cross-iteration ghost overlap — 4x2x1, 8 ranks");
    let dcfg_grid = DistScfConfig::new(cfg.clone()).with_grid(GridShape::new(4, 2, 1));
    let dcfg_ov = dcfg_grid.clone().with_overlap();
    let (run_no_ov, e_no_ov, wait_no_ov) = scf_run(&space, &sys, &dcfg_grid, 8, &[KPoint::gamma()]);
    let (_, e_ov, wait_ov) = scf_run(&space, &sys, &dcfg_ov, 8, &[KPoint::gamma()]);
    let overlap = OverlapComparison {
        nranks: 8,
        grid: "4x2x1".to_string(),
        ghost_wait_seconds_no_overlap: wait_no_ov,
        ghost_wait_seconds_overlap: wait_ov,
        free_energy_bitwise_identical: e_no_ov.to_bits() == e_ov.to_bits(),
    };
    println!(
        "ghost wait: {wait_no_ov:.4} s blocking vs {wait_ov:.4} s overlapped \
         ({:.2}x), energies bit-identical: {}",
        wait_no_ov / wait_ov.max(1e-12),
        overlap.free_energy_bitwise_identical
    );

    section("FP32 subspace reductions — 4x2x1, 8 ranks");
    let dcfg_sub32 = dcfg_grid.clone().with_subspace_fp32();
    let (run_sub32, e_sub32, _) = scf_run(&space, &sys, &dcfg_sub32, 8, &[KPoint::gamma()]);
    let subspace_fp32 = SubspaceFp32Ablation {
        nranks: 8,
        grid: "4x2x1".to_string(),
        free_energy_fp64_ha: e_no_ov,
        free_energy_fp32_subspace_ha: e_sub32,
        abs_energy_diff_ha: (e_no_ov - e_sub32).abs(),
        comm_fp64: run_no_ov.comm,
        comm_fp32: run_sub32.comm,
    };
    println!(
        "E(fp64 subspace) = {e_no_ov:+.10} Ha   E(fp32 off-diagonal) = {e_sub32:+.10} Ha   \
         |diff| = {:.3e} Ha; {} FP32 B on the wire",
        subspace_fp32.abs_energy_diff_ha, subspace_fp32.comm_fp32.bytes_fp32
    );

    let report = ScalingReport {
        note: "threaded MPI stand-in (ranks = threads, shared CommStats); wall times are \
               per-process and include thread spawn, so sub-unit speedups are expected at \
               this miniature DoF count — the artifact's claims are the phase breakdown, \
               the byte accounting, and the rank-count-invariant energies; FP32 in `wire` \
               applies to the Chebyshev-filter boundary exchange only; `grid_runs` reshape \
               8 ranks across domain x band x k-group axes on a two-k-point problem; \
               `subspace_fp32` ships only off-band-diagonal subspace blocks in FP32 and \
               keeps Cholesky pivot blocks and cleanup passes FP64"
            .to_string(),
        system,
        runs,
        wire,
        grid_runs: Some(grid_runs),
        overlap: Some(overlap),
        subspace_fp32: Some(subspace_fp32),
    };
    report
        .validate()
        .expect("emitted report must satisfy its own schema");
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    if stdout_only {
        println!("{json}");
    } else {
        std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
        println!();
        println!("wrote BENCH_scaling.json");
    }
}
