//! Fig. 3: accuracy of MLXC against standard XC approximations.
//!
//! The paper trains MLXC on 5 small systems (H2, LiH, Li, N, Ne) and
//! tests on a thermochemistry set, finding ~7 mHa/atom — far better than
//! LDA/GGA/hybrid. Here the full pipeline runs for real at miniature
//! scale: hidden-truth densities -> inverse DFT -> MLXC training -> SCF
//! with MLXC on held-out systems, with the error measured against the
//! hidden truth (which stands in for the QMB answer, DESIGN.md S2).

use dft_bench::pipeline::{train_mlxc_from_invdft, MiniSystem, PipelineConfig};
use dft_bench::section;
use dft_core::scf::{scf, KPoint};
use dft_core::xc::{Lda, MlxcFunctional, Pbe, SyntheticTruth, XcFunctional};

fn main() {
    section("Fig. 3 — MLXC vs conventional functionals (miniature pipeline)");
    println!("training MLXC from invDFT data (this runs the real pipeline)...");
    let cfg = PipelineConfig {
        invdft_iters: 60,
        epochs: 400,
        verbose: true,
        ..PipelineConfig::default()
    };
    let (model, loss, diags) = train_mlxc_from_invdft(&MiniSystem::training_set(), &cfg);
    println!(
        "training loss: {:.3e} -> {:.3e}",
        loss[0],
        loss.last().unwrap()
    );
    for d in &diags {
        println!(
            "  invDFT {}: |drho| {:.2e} -> {:.2e}",
            d.name, d.invdft_first, d.invdft_last
        );
    }

    section("held-out test set: |E - E_truth| per atom (mHa)");
    let mlxc = MlxcFunctional::new(model);
    let funcs: [(&str, &dyn XcFunctional); 3] = [
        ("LDA (Level 1)", &Lda),
        ("PBE (Level 2)", &Pbe),
        ("MLXC (Level 4+)", &mlxc),
    ];
    let mut mae = [0.0f64; 3];
    let tests = MiniSystem::test_set();
    println!(
        "{:<18} {:>14} {:>14} {:>14}",
        "system", "LDA", "PBE", "MLXC"
    );
    for ms in &tests {
        let space = ms.space();
        let sys = ms.atomic_system();
        let cfg_scf = ms.scf_config();
        let truth = scf(&space, &sys, &SyntheticTruth, &cfg_scf, &[KPoint::gamma()]);
        assert!(truth.converged);
        print!("{:<18}", ms.name);
        for (fi, (_, f)) in funcs.iter().enumerate() {
            let r = scf(&space, &sys, *f, &cfg_scf, &[KPoint::gamma()]);
            let err =
                (r.energy.free_energy - truth.energy.free_energy).abs() / ms.atoms.len() as f64;
            mae[fi] += err / tests.len() as f64;
            print!("{:>13.2} ", err * 1000.0);
        }
        println!();
    }
    println!();
    println!(
        "MAE/atom (mHa):  LDA {:.2}   PBE {:.2}   MLXC {:.2}",
        mae[0] * 1000.0,
        mae[1] * 1000.0,
        mae[2] * 1000.0
    );
    println!("paper shape: MLXC (7 mHa-class) beats Level 1-2 by a wide margin");
    println!(
        "reproduced: MLXC < LDA: {}   MLXC < PBE: {}",
        mae[2] < mae[0],
        mae[2] < mae[1]
    );
}
