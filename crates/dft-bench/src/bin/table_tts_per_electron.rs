//! Footnote 11 / Sec. 1: time-to-solution per electron vs QMC.
//!
//! Paper: 3.3e-2 s/GS/electron for DFT-FE-MLXC, a 220-350x speedup over
//! QMC (the most efficient quantum-accurate QMB method) at 100x the
//! system size.

use dft_bench::{section, twin_disloc_mg_y_a, ybcd_quasicrystal};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    section("time-to-solution per electron (s/GS/electron)");
    // QMC reference from the paper's Table 1: NiO 1,536 e-, 294.7 min/GS
    let qmc = 294.7 * 60.0 / 1536.0;
    println!("QMCPACK (Titan, NiO 1,536 e-):        {qmc:>10.2}");

    // YbCd full ground state (Table 2 model): 34 SCF + init
    let ybcd = ybcd_quasicrystal();
    let r = scf_step(
        &ybcd,
        &SolverOptions::default(),
        &ClusterSpec::new(MachineModel::perlmutter(), 1120),
    );
    let total = 69.0 + 34.0 * r.total_seconds + 4.0 * r.step("CF").seconds;
    let ours_ybcd = total / ybcd.supercell_electrons();
    println!("DFT-FE-MLXC (YbCd 40,040 e-):         {ours_ybcd:>10.3}   (paper headline: 0.033)");

    // TwinDislocMgY(A) at 40 SCF steps
    let a = twin_disloc_mg_y_a();
    let ra = scf_step(
        &a,
        &SolverOptions {
            gpu_aware: false,
            ..SolverOptions::default()
        },
        &ClusterSpec::new(MachineModel::frontier(), 2400),
    );
    let ours_a = 40.0 * ra.total_seconds / a.supercell_electrons();
    println!("DFT-FE-MLXC (TwinDislocMgY(A) 302,668 e-): {ours_a:>6.3}");

    println!();
    println!(
        "speedup vs QMC: YbCd {:.0}x, TwinDislocMgY(A) {:.0}x (paper: 220-350x)",
        qmc / ours_ybcd,
        qmc / ours_a
    );
    println!(
        "system size vs QMB reach: {:.0}x (paper: 100x)",
        a.supercell_electrons() / 6144.0
    );
}
