//! Fig. 8: strong scaling of DFT-FE-MLXC on Frontier and Perlmutter for
//! the YbCd quasicrystal nanoparticle, and the MLXC-vs-PBE overhead.
//!
//! Paper: ~80% strong-scaling efficiency at 240 Frontier nodes (39.1K
//! DoF/GCD) and 560 Perlmutter nodes (33.5K DoF/GPU); ~60% at 1,120
//! Perlmutter nodes (5x speedup over 140 nodes, 125 s -> 25 s per SCF);
//! MLXC costs about the same wall time as PBE (Level-2) per iteration.

use dft_bench::{section, ybcd_quasicrystal};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    let sys = ybcd_quasicrystal();
    let opts = SolverOptions::default();

    section("Fig. 8 — Frontier strong scaling (s/SCF)");
    let frontier_nodes = [60usize, 120, 240, 480, 960];
    let mut tf = Vec::new();
    for &n in &frontier_nodes {
        let r = scf_step(&sys, &opts, &ClusterSpec::new(MachineModel::frontier(), n));
        println!(
            "{:>6} nodes  {:>8.1} s   ({:.1}K DoF/GCD)",
            n,
            r.total_seconds,
            sys.dofs / (n as f64 * 8.0) / 1000.0
        );
        tf.push(r.total_seconds);
    }
    let eff240 = 100.0 * tf[0] * frontier_nodes[0] as f64 / (tf[2] * frontier_nodes[2] as f64);
    println!("strong-scaling efficiency at 240 nodes (paper ~80%): {eff240:.0}%");

    section("Fig. 8 — Perlmutter strong scaling (s/SCF)");
    let perl_nodes = [140usize, 280, 560, 1120];
    let mut tp = Vec::new();
    for &n in &perl_nodes {
        let r = scf_step(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::perlmutter(), n),
        );
        println!(
            "{:>6} nodes  {:>8.1} s   ({:.1}K DoF/GPU)",
            n,
            r.total_seconds,
            sys.dofs / (n as f64 * 4.0) / 1000.0
        );
        tp.push(r.total_seconds);
    }
    println!(
        "speedup 140 -> 1,120 nodes (paper ~5x from ~125 s to ~25 s): {:.1}x ({:.0} s -> {:.0} s)",
        tp[0] / tp[3],
        tp[0],
        tp[3]
    );
    let eff560 = 100.0 * tp[0] * perl_nodes[0] as f64 / (tp[2] * perl_nodes[2] as f64);
    let eff1120 = 100.0 * tp[0] * perl_nodes[0] as f64 / (tp[3] * perl_nodes[3] as f64);
    println!("scaling efficiency (paper ~80% @560, ~60% @1,120): {eff560:.0}% / {eff1120:.0}%");

    section("MLXC vs PBE overhead (measured, miniature real solver)");
    // The paper observes near-identical wall times for Level-4+ MLXC and
    // Level-2 PBE. Measure it for real at miniature scale.
    use dft_bench::pipeline::MiniSystem;
    use dft_core::scf::{scf, KPoint};
    use dft_core::xc::{MlxcFunctional, Pbe};
    use dft_mlxc::MlxcModel;
    use std::time::Instant;
    let ms = &MiniSystem::training_set()[1];
    let space = ms.space();
    let sys_a = ms.atomic_system();
    let cfg = ms.scf_config();
    let t0 = Instant::now();
    let _ = scf(&space, &sys_a, &Pbe, &cfg, &[KPoint::gamma()]);
    let t_pbe = t0.elapsed().as_secs_f64();
    let mlxc = MlxcFunctional::new(MlxcModel::new(3));
    let t0 = Instant::now();
    let _ = scf(&space, &sys_a, &mlxc, &cfg, &[KPoint::gamma()]);
    let t_mlxc = t0.elapsed().as_secs_f64();
    println!("PBE  ground state: {t_pbe:.2} s");
    println!(
        "MLXC ground state: {t_mlxc:.2} s   (ratio {:.2} at miniature scale)",
        t_mlxc / t_pbe
    );
    // At miniature scale the O(M) XC evaluation is a visible share of the
    // iteration; at the paper's scale it is negligible against the
    // O(M N^2) ChFES work, which is why the paper sees ~1.0:
    let m = sys.dofs;
    let n = sys.states;
    let mlxc_flops = m * 2.0 * (3.0 * 80.0 + 4.0 * 80.0 * 80.0 + 80.0) * 2.0; // fwd+grad
    let step_flops = 4.0 * 2.0 * m * n * n; // the GEMM steps alone
    println!(
        "at YbCd scale, MLXC inference is {:.3}% of the per-iteration FLOPs -> wall-time ratio ~1.0 (paper)",
        100.0 * mlxc_flops / step_flops
    );
}
