//! Fig. 5: strong scaling of DFT-FE-MLXC on Summit for the YbCd
//! quasicrystal nanoparticle (1,943 atoms, 40,040 e-, 75,069,290 DoF),
//! baseline vs mixed-precision + asynchronous compute/communication.
//!
//! Paper: 240 -> 1,920 nodes; the combined strategies give ~1.8x lower
//! minimum wall time and lift the 1,920-node scaling efficiency from 36%
//! to 54%.

use dft_bench::{section, ybcd_quasicrystal};
use dft_hpc::machine::{ClusterSpec, MachineModel};
use dft_hpc::schedule::{scf_step, SolverOptions};

fn main() {
    let sys = ybcd_quasicrystal();
    let nodes = [240usize, 480, 960, 1920];
    let variants: [(&str, SolverOptions); 4] = [
        ("baseline", SolverOptions::baseline()),
        (
            "+mixed precision",
            SolverOptions {
                mixed_precision: true,
                ..SolverOptions::baseline()
            },
        ),
        (
            "+async overlap",
            SolverOptions {
                async_overlap: true,
                ..SolverOptions::baseline()
            },
        ),
        ("+both (paper)", SolverOptions::default()),
    ];

    section("Fig. 5 — Summit strong scaling, YbCd quasicrystal (s/SCF)");
    print!("{:<10}", "nodes");
    for (name, _) in &variants {
        print!("{name:>18}");
    }
    println!();
    let mut t: Vec<Vec<f64>> = vec![vec![]; variants.len()];
    for &n in &nodes {
        print!("{n:<10}");
        for (vi, (_, opts)) in variants.iter().enumerate() {
            let r = scf_step(&sys, opts, &ClusterSpec::new(MachineModel::summit(), n));
            print!("{:>18.1}", r.total_seconds);
            t[vi].push(r.total_seconds);
        }
        println!();
    }
    println!();
    let min_base = t[0].iter().cloned().fold(f64::INFINITY, f64::min);
    let min_both = t[3].iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "min wall-time improvement (paper ~1.8x): {:.2}x",
        min_base / min_both
    );
    let eff = |series: &Vec<f64>| -> f64 {
        // strong-scaling efficiency at 1,920 nodes relative to 240
        100.0 * series[0] * 240.0 / (series[3] * 1920.0)
    };
    println!(
        "1,920-node scaling efficiency (paper 36% -> 54%): baseline {:.0}%, both {:.0}%",
        eff(&t[0]),
        eff(&t[3])
    );
}
