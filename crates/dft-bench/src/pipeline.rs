//! The miniature end-to-end pipeline of the paper's Fig. 2:
//! synthetic-QMB densities -> inverse DFT -> MLXC training.
//!
//! "QMB" densities are ground states of the hidden-truth functional
//! (DESIGN.md S2); invDFT recovers the exact XC potential from each
//! density alone; the `{rho, v_xc}` pairs train the MLXC network with the
//! paper's composite energy+potential loss. Several experiment binaries
//! and the integration tests share this module.

use dft_core::scf::{scf, KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::{evaluate_xc, FeDivergence, SyntheticTruth};
use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fem::space::FeSpace;
use dft_invdft::{invert, InvDftConfig};
use dft_mlxc::nn::Mlp;
use dft_mlxc::train::{train, Dataset, DivergenceOp, SystemSample, TrainConfig};
use dft_mlxc::MlxcModel;
use std::sync::Arc;

/// A small training/test system: a cluster of smeared pseudo-atoms in a
/// graded Dirichlet box.
#[derive(Clone, Debug)]
pub struct MiniSystem {
    /// Label.
    pub name: &'static str,
    /// Atoms as `(z, r_c, offset-from-centre)`.
    pub atoms: Vec<(f64, f64, [f64; 3])>,
    /// Box edge (Bohr).
    pub box_l: f64,
    /// FE polynomial degree.
    pub degree: usize,
}

impl MiniSystem {
    /// The training set standing in for the paper's {H2, LiH, Li, N, Ne}.
    pub fn training_set() -> Vec<MiniSystem> {
        vec![
            MiniSystem {
                name: "A1 (z=1)",
                atoms: vec![(1.0, 0.6, [0.0; 3])],
                box_l: 10.0,
                degree: 3,
            },
            MiniSystem {
                name: "A2 (z=2)",
                atoms: vec![(2.0, 0.55, [0.0; 3])],
                box_l: 10.0,
                degree: 3,
            },
            MiniSystem {
                name: "A3 (z=3)",
                atoms: vec![(3.0, 0.6, [0.0; 3])],
                box_l: 10.0,
                degree: 3,
            },
            MiniSystem {
                name: "D1 (z=1 dimer)",
                atoms: vec![(1.0, 0.6, [-1.1, 0.0, 0.0]), (1.0, 0.6, [1.1, 0.0, 0.0])],
                box_l: 11.0,
                degree: 3,
            },
        ]
    }

    /// Held-out test systems for the Fig. 3 analogue.
    pub fn test_set() -> Vec<MiniSystem> {
        vec![
            MiniSystem {
                name: "T1 (z=2 soft)",
                atoms: vec![(2.0, 0.7, [0.0; 3])],
                box_l: 10.0,
                degree: 3,
            },
            MiniSystem {
                name: "T2 (z=4)",
                atoms: vec![(4.0, 0.65, [0.0; 3])],
                box_l: 10.0,
                degree: 3,
            },
            MiniSystem {
                name: "T3 (heterodimer)",
                atoms: vec![(2.0, 0.55, [-1.2, 0.0, 0.0]), (1.0, 0.6, [1.3, 0.0, 0.0])],
                box_l: 11.0,
                degree: 3,
            },
        ]
    }

    /// FE space graded toward the atoms.
    pub fn space(&self) -> FeSpace {
        let c = self.box_l / 2.0;
        let centers_of = |d: usize| -> Vec<f64> { self.atoms.iter().map(|a| c + a.2[d]).collect() };
        let ax = |d: usize| {
            Axis::graded(
                0.0,
                self.box_l,
                0.6,
                2.5,
                &centers_of(d),
                2.5,
                BoundaryCondition::Dirichlet,
            )
        };
        FeSpace::new(Mesh3d::new([ax(0), ax(1), ax(2)], self.degree))
    }

    /// Atom list centred in the box.
    pub fn atomic_system(&self) -> AtomicSystem {
        let c = self.box_l / 2.0;
        AtomicSystem::new(
            self.atoms
                .iter()
                .map(|&(z, r_c, off)| Atom {
                    kind: AtomKind::Pseudo { z, r_c },
                    pos: [c + off[0], c + off[1], c + off[2]],
                })
                .collect(),
        )
    }

    /// Electron count.
    pub fn n_electrons(&self) -> f64 {
        self.atoms.iter().map(|a| a.0).sum()
    }

    /// An SCF configuration adequate for these miniatures.
    pub fn scf_config(&self) -> ScfConfig {
        ScfConfig {
            n_states: (self.n_electrons() / 2.0).ceil() as usize + 3,
            kt: 0.01,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 35,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// invDFT outer iterations per system.
    pub invdft_iters: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Use a reduced network (fast CI runs) instead of the paper's 5x80.
    pub quick_net: bool,
    /// RNG seed.
    pub seed: u64,
    /// Print progress.
    pub verbose: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            invdft_iters: 50,
            epochs: 300,
            lr: 3e-3,
            quick_net: true,
            seed: 11,
            verbose: false,
        }
    }
}

/// Divergence operator owning its space (the training set outlives the
/// local `FeSpace` bindings).
struct ArcFeDivergence(Arc<FeSpace>);

impl DivergenceOp for ArcFeDivergence {
    fn divergence(&self, vx: &[f64], vy: &[f64], vz: &[f64]) -> Vec<f64> {
        FeDivergence { space: &self.0 }.divergence(vx, vy, vz)
    }
    fn adjoint(&self, lambda: &[f64]) -> [Vec<f64>; 3] {
        FeDivergence { space: &self.0 }.adjoint(lambda)
    }
}

/// Per-system pipeline diagnostics.
#[derive(Clone, Debug)]
pub struct PipelineDiag {
    /// System name.
    pub name: &'static str,
    /// invDFT initial density mismatch.
    pub invdft_first: f64,
    /// invDFT final density mismatch.
    pub invdft_last: f64,
    /// Target XC energy of the system.
    pub exc_target: f64,
}

/// Run the full data-generation + training pipeline; returns the trained
/// model, the training loss history, and per-system diagnostics.
pub fn train_mlxc_from_invdft(
    systems: &[MiniSystem],
    cfg: &PipelineConfig,
) -> (MlxcModel, Vec<f64>, Vec<PipelineDiag>) {
    let mut data: Dataset = Vec::new();
    let mut diags = Vec::new();
    for ms in systems {
        let space = Arc::new(ms.space());
        let sys = ms.atomic_system();
        // (1) synthetic-QMB ground state
        let truth = scf(
            &space,
            &sys,
            &SyntheticTruth,
            &ms.scf_config(),
            &[KPoint::gamma()],
        );
        assert!(truth.converged, "truth SCF failed for {}", ms.name);
        // the QMB-side E_xc target (the paper extracts it from many-body
        // energies; the hidden-truth substitution makes it explicit)
        let exc_target = evaluate_xc(&space, &truth.density, &SyntheticTruth).energy;
        // (2) inverse DFT: recover v_xc from the density alone
        let inv_cfg = InvDftConfig {
            n_states: ms.scf_config().n_states,
            max_iter: cfg.invdft_iters,
            tol: 1e-5,
            verbose: cfg.verbose,
            ..InvDftConfig::default()
        };
        let inv = invert(&space, &sys, &truth.density, &inv_cfg);
        if cfg.verbose {
            println!(
                "invDFT[{}]: |drho| {:.2e} -> {:.2e} in {} iters",
                ms.name,
                inv.history[0],
                inv.history.last().unwrap(),
                inv.iterations
            );
        }
        diags.push(PipelineDiag {
            name: ms.name,
            invdft_first: inv.history[0],
            invdft_last: *inv.history.last().unwrap(),
            exc_target,
        });
        // (3) assemble the training sample
        let grad = truth.density.gradient(&space);
        data.push(SystemSample {
            name: ms.name.to_string(),
            rho: truth.density.values.clone(),
            xi: vec![0.0; space.nnodes()],
            grad: [
                grad[0].values.clone(),
                grad[1].values.clone(),
                grad[2].values.clone(),
            ],
            weights: space.mass_diag().to_vec(),
            vxc_target: inv.vxc.clone(),
            exc_target,
            div_op: Box::new(ArcFeDivergence(Arc::clone(&space))),
        });
    }

    // (4) train MLXC on the {rho, v_xc, E_xc} data
    let mut model = if cfg.quick_net {
        MlxcModel::from_net(Mlp::new(&[3, 24, 24, 1], cfg.seed))
    } else {
        MlxcModel::new(cfg.seed)
    };
    let tc = TrainConfig {
        epochs: cfg.epochs,
        lr: cfg.lr,
        w_energy: 1.0,
        w_potential: 1.0,
    };
    let report = train(&mut model, &data, &tc);
    (model, report.loss_history, diags)
}
