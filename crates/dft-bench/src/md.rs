//! Schema and validation of `BENCH_md.json`, the artifact emitted by the
//! `bench_md` binary: distributed Hellmann-Feynman force assembly
//! (partition critical path, parity, determinism), FIRE relaxation with
//! warm-started SCF between geometry steps (cold vs warm iteration
//! counts, energy parity against the serial driver), and a short
//! velocity-Verlet BO-MD run with its total-energy drift.

use serde::{Deserialize, Serialize};

/// Workload shape shared by the three sections.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MdSetup {
    /// Thread-ranks used by the distributed runs.
    pub ranks: usize,
    /// Process-grid shape of the force partition (e.g. "4x1x1").
    pub grid: String,
    /// Nodes of the force-assembly benchmark mesh.
    pub force_nodes: usize,
    /// Atoms of the force-assembly benchmark system.
    pub force_atoms: usize,
    /// DoFs of the relaxation/MD dimer system.
    pub relax_ndofs: usize,
    /// SCF density tolerance of the relaxation/MD solves.
    pub scf_tol: f64,
    /// FIRE geometry moves performed by each relaxation arm.
    pub relax_steps: usize,
    /// Velocity-Verlet steps of the MD run.
    pub md_steps: usize,
}

/// The distributed force assembly: how the serial O(atoms x nodes)
/// bottleneck divides across ranks, and that the reduction reproduces the
/// serial answer exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ForceAssemblyStats {
    /// Repetitions per timed batch in this section.
    pub evaluations: usize,
    /// Serial assembly seconds (full electrostatic quadrature + full
    /// ion-ion image sum, one rank): best of several batches of
    /// `evaluations` repetitions — the minimum is robust against
    /// scheduler interference on a shared host.
    pub serial_assembly_s: f64,
    /// Each rank's shard timed in isolation (same batching), index =
    /// rank.
    pub rank_assembly_s: Vec<f64>,
    /// `max(rank_assembly_s)` — the assembly critical path under the
    /// partition.
    pub critical_path_s: f64,
    /// `serial_assembly_s / critical_path_s`: the measured division of
    /// the serial bottleneck. On a single-core host this is the honest
    /// speedup claim — concurrent thread-ranks time-slice one core, so
    /// end-to-end wall time cannot drop (see `note`).
    pub partition_speedup: f64,
    /// `max / min` over `rank_assembly_s` — shard balance.
    pub balance: f64,
    /// Mean end-to-end `distributed_forces` wall seconds on this host
    /// (includes the replicated Poisson solve and thread contention).
    pub distributed_wall_s_mean: f64,
    /// Mean replicated force-Poisson seconds per evaluation.
    pub poisson_s_mean: f64,
    /// Mean force-reduction seconds per evaluation.
    pub reduce_s_mean: f64,
    /// Worst per-component difference vs the serial `compute_forces`.
    pub max_abs_force_diff_vs_serial: f64,
    /// Whether two identical distributed runs produced bit-identical
    /// forces on every rank (L004).
    pub bit_identical_reruns: bool,
}

/// Cold vs warm FIRE relaxation arms plus serial-driver parity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelaxWarmStats {
    /// Geometry moves per arm (each arm records `steps + 1` evaluations).
    pub steps: usize,
    /// Per-evaluation SCF iterations of the cold arm (`warm_start =
    /// false`; every step solves from the superposition guess).
    pub cold_scf_iterations: Vec<usize>,
    /// Per-evaluation SCF iterations of the warm arm (`warm_start =
    /// true`; steps after the first resume from the previous step's
    /// converged state).
    pub warm_scf_iterations: Vec<usize>,
    /// Evaluations of the warm arm that actually resumed from a snapshot
    /// (must be every evaluation after the first).
    pub warm_steps: usize,
    /// `sum(cold_scf_iterations[1..])` — iterations the warm start can
    /// address.
    pub cold_total_after_first: usize,
    /// `sum(warm_scf_iterations[1..])`.
    pub warm_total_after_first: usize,
    /// `100 * (1 - warm_total_after_first / cold_total_after_first)`.
    pub savings_percent: f64,
    /// Final free energy of the serial `relax` driver (Ha).
    pub serial_final_energy_ha: f64,
    /// Final free energy of the cold distributed arm (Ha).
    pub cold_final_energy_ha: f64,
    /// Final free energy of the warm distributed arm (Ha).
    pub warm_final_energy_ha: f64,
    /// `|cold - serial|`: the cold arm replays the serial FIRE
    /// trajectory, so this is held to 1e-10 Ha.
    pub abs_cold_vs_serial_ha: f64,
    /// `|warm - cold|`: warm steps reconverge to the same SCF tolerance
    /// from a different initial guess, so this is tolerance-level noise,
    /// not a bitwise identity.
    pub abs_warm_vs_cold_ha: f64,
    /// Largest force component at the warm arm's final geometry.
    pub final_fmax: f64,
}

/// The velocity-Verlet BO-MD run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MdRunStats {
    /// MD steps integrated.
    pub steps: usize,
    /// Time step (atomic units).
    pub dt: f64,
    /// Per-evaluation SCF iterations (`steps + 1` entries).
    pub scf_iterations: Vec<usize>,
    /// Evaluations that warm-started (every one after the first).
    pub warm_steps: usize,
    /// Potential + kinetic at step 0 (Ha).
    pub initial_total_ha: f64,
    /// Potential + kinetic after the last step (Ha).
    pub final_total_ha: f64,
    /// `|final - initial|` — bounded by integrator + SCF-tolerance noise.
    pub energy_drift_ha: f64,
}

/// The full `BENCH_md.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MdBench {
    /// Provenance note (host shape, what the speedup metric means here).
    pub note: String,
    /// Workload shape.
    pub setup: MdSetup,
    /// Distributed force assembly.
    pub forces: ForceAssemblyStats,
    /// Cold/warm relaxation arms.
    pub relax: RelaxWarmStats,
    /// BO-MD run.
    pub md: MdRunStats,
}

impl MdBench {
    /// Schema + invariant check; used by the emitting binary before
    /// writing and by CI's `--check` against the committed artifact.
    pub fn validate(&self) -> Result<(), String> {
        let s = &self.setup;
        if s.ranks < 2 {
            return Err("force partition must use at least two ranks".into());
        }
        if s.force_nodes == 0 || s.force_atoms == 0 || s.relax_ndofs == 0 {
            return Err("degenerate workload shape".into());
        }
        if !(s.scf_tol.is_finite() && s.scf_tol > 0.0) {
            return Err("SCF tolerance invalid".into());
        }
        if s.relax_steps == 0 || s.md_steps == 0 {
            return Err("relax/MD arms must take at least one step".into());
        }

        let f = &self.forces;
        if f.evaluations < 3 {
            return Err("force timings need at least 3 repetitions".into());
        }
        if f.rank_assembly_s.len() != s.ranks {
            return Err("one shard timing per rank required".into());
        }
        for (name, v) in [
            ("serial_assembly_s", f.serial_assembly_s),
            ("critical_path_s", f.critical_path_s),
            ("distributed_wall_s_mean", f.distributed_wall_s_mean),
            ("poisson_s_mean", f.poisson_s_mean),
            ("reduce_s_mean", f.reduce_s_mean),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("force timing {name} invalid"));
            }
        }
        let max_shard = f.rank_assembly_s.iter().copied().fold(0.0, f64::max);
        let min_shard = f.rank_assembly_s.iter().copied().fold(f64::MAX, f64::min);
        if (f.critical_path_s - max_shard).abs() > 1e-12 {
            return Err("critical_path_s is not the max shard time".into());
        }
        let speedup = f.serial_assembly_s / f.critical_path_s;
        if (speedup - f.partition_speedup).abs() > 1e-9 * speedup.abs() {
            return Err("partition_speedup inconsistent with the timings".into());
        }
        if f.partition_speedup < 1.5 {
            return Err(format!(
                "the partition must measurably divide the serial assembly, got {:.2}x",
                f.partition_speedup
            ));
        }
        let balance = max_shard / min_shard;
        if (balance - f.balance).abs() > 1e-9 * balance {
            return Err("balance inconsistent with the shard timings".into());
        }
        if f.balance > 3.0 {
            return Err(format!("shards are badly unbalanced ({:.2}x)", f.balance));
        }
        if f.max_abs_force_diff_vs_serial > 1e-12 {
            return Err(format!(
                "distributed forces drift from serial by {:.3e} (> 1e-12)",
                f.max_abs_force_diff_vs_serial
            ));
        }
        if !f.bit_identical_reruns {
            return Err("repeated distributed runs were not bit-identical".into());
        }

        let r = &self.relax;
        if r.steps != s.relax_steps {
            return Err("relax step counts disagree with the setup".into());
        }
        let want = r.steps + 1;
        if r.cold_scf_iterations.len() != want || r.warm_scf_iterations.len() != want {
            return Err(format!("each relax arm must record {want} evaluations"));
        }
        if r.cold_scf_iterations.contains(&0) || r.warm_scf_iterations.contains(&0) {
            return Err("every relax evaluation must perform SCF iterations".into());
        }
        if r.warm_steps != r.steps {
            return Err(format!(
                "every step after the first must warm-start: {} of {}",
                r.warm_steps, r.steps
            ));
        }
        let cold_after: usize = r.cold_scf_iterations[1..].iter().sum();
        let warm_after: usize = r.warm_scf_iterations[1..].iter().sum();
        if cold_after != r.cold_total_after_first || warm_after != r.warm_total_after_first {
            return Err("iteration totals inconsistent with the per-step records".into());
        }
        if warm_after >= cold_after {
            return Err(format!(
                "warm steps must reconverge in fewer iterations: warm {warm_after} vs cold {cold_after}"
            ));
        }
        let savings = 100.0 * (1.0 - warm_after as f64 / cold_after as f64);
        if (savings - r.savings_percent).abs() > 1e-9 {
            return Err("savings_percent inconsistent with the totals".into());
        }
        if r.savings_percent < 10.0 {
            return Err(format!(
                "warm-start savings must be measurable (>= 10%), got {:.1}%",
                r.savings_percent
            ));
        }
        if !r.abs_cold_vs_serial_ha.is_finite() || r.abs_cold_vs_serial_ha > 1e-10 {
            return Err(format!(
                "cold distributed arm drifts from serial relax by {:.3e} Ha (> 1e-10)",
                r.abs_cold_vs_serial_ha
            ));
        }
        if !r.abs_warm_vs_cold_ha.is_finite() || r.abs_warm_vs_cold_ha > 1e-6 {
            return Err(format!(
                "warm arm drifts beyond SCF-tolerance noise: {:.3e} Ha",
                r.abs_warm_vs_cold_ha
            ));
        }
        if !r.final_fmax.is_finite() || r.final_fmax < 0.0 {
            return Err("final fmax invalid".into());
        }

        let m = &self.md;
        if m.steps != s.md_steps {
            return Err("MD step counts disagree with the setup".into());
        }
        if !(m.dt.is_finite() && m.dt > 0.0) {
            return Err("MD time step invalid".into());
        }
        if m.scf_iterations.len() != m.steps + 1 {
            return Err(format!("MD must record {} evaluations", m.steps + 1));
        }
        if m.scf_iterations.contains(&0) {
            return Err("every MD evaluation must perform SCF iterations".into());
        }
        if m.warm_steps != m.steps {
            return Err("every MD step after the first must warm-start".into());
        }
        let drift = (m.final_total_ha - m.initial_total_ha).abs();
        if (drift - m.energy_drift_ha).abs() > 1e-12 {
            return Err("energy_drift_ha inconsistent with the totals".into());
        }
        if !m.energy_drift_ha.is_finite() || m.energy_drift_ha > 1e-2 {
            return Err(format!(
                "MD total energy drifts by {:.3e} Ha over {} steps",
                m.energy_drift_ha, m.steps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> MdBench {
        MdBench {
            note: "test".into(),
            setup: MdSetup {
                ranks: 4,
                grid: "4x1x1".into(),
                force_nodes: 1728,
                force_atoms: 10,
                relax_ndofs: 216,
                scf_tol: 1e-6,
                relax_steps: 4,
                md_steps: 4,
            },
            forces: ForceAssemblyStats {
                evaluations: 10,
                serial_assembly_s: 0.4,
                rank_assembly_s: vec![0.11, 0.10, 0.10, 0.09],
                critical_path_s: 0.11,
                partition_speedup: 0.4 / 0.11,
                balance: 0.11 / 0.09,
                distributed_wall_s_mean: 0.05,
                poisson_s_mean: 0.02,
                reduce_s_mean: 0.001,
                max_abs_force_diff_vs_serial: 3e-15,
                bit_identical_reruns: true,
            },
            relax: RelaxWarmStats {
                steps: 4,
                cold_scf_iterations: vec![8, 8, 8, 8, 8],
                warm_scf_iterations: vec![8, 4, 6, 6, 6],
                warm_steps: 4,
                cold_total_after_first: 32,
                warm_total_after_first: 22,
                savings_percent: 100.0 * (1.0 - 22.0 / 32.0),
                serial_final_energy_ha: -1.18379405,
                cold_final_energy_ha: -1.18379405,
                warm_final_energy_ha: -1.18379396,
                abs_cold_vs_serial_ha: 3e-12,
                abs_warm_vs_cold_ha: 9e-8,
                final_fmax: 0.31,
            },
            md: MdRunStats {
                steps: 4,
                dt: 0.5,
                scf_iterations: vec![8, 5, 6, 6, 6],
                warm_steps: 4,
                initial_total_ha: -1.105,
                final_total_ha: -1.1052,
                energy_drift_ha: 0.0002,
            },
        }
    }

    #[test]
    fn good_report_validates_and_round_trips() {
        let r = good();
        r.validate().unwrap();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: MdBench = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.relax.warm_total_after_first, 22);
    }

    #[test]
    fn validation_rejects_violations() {
        let mut r = good();
        r.forces.max_abs_force_diff_vs_serial = 1e-10;
        assert!(r.validate().is_err(), "force drift must be rejected");

        let mut r = good();
        r.forces.bit_identical_reruns = false;
        assert!(r.validate().is_err(), "nondeterminism must be rejected");

        let mut r = good();
        r.forces.rank_assembly_s = vec![0.35, 0.30, 0.30, 0.30];
        r.forces.critical_path_s = 0.35;
        r.forces.partition_speedup = 0.4 / 0.35;
        r.forces.balance = 0.35 / 0.30;
        assert!(
            r.validate().is_err(),
            "a non-dividing partition is rejected"
        );

        let mut r = good();
        r.relax.warm_scf_iterations = vec![8, 8, 8, 8, 8];
        r.relax.warm_total_after_first = 32;
        r.relax.savings_percent = 0.0;
        assert!(r.validate().is_err(), "no warm savings must be rejected");

        let mut r = good();
        r.relax.warm_steps = 2;
        assert!(r.validate().is_err(), "cold middle steps must be rejected");

        let mut r = good();
        r.relax.abs_cold_vs_serial_ha = 1e-8;
        assert!(
            r.validate().is_err(),
            "serial-parity drift must be rejected"
        );

        let mut r = good();
        r.md.energy_drift_ha = 0.5;
        r.md.final_total_ha = r.md.initial_total_ha - 0.5;
        assert!(r.validate().is_err(), "MD drift must be rejected");

        let mut r = good();
        r.relax.savings_percent += 1.0;
        assert!(r.validate().is_err(), "inconsistent savings rejected");
    }
}
