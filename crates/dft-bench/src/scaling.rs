//! Schema and validation of `BENCH_scaling.json`, the artifact emitted by
//! the `bench_scaling` binary: distributed SCF strong scaling at 1/2/4/8
//! ranks (wall time per ChFES phase, speedup, communication volume per wire
//! precision) plus the FP32-wire accuracy/volume comparison.

use serde::{Deserialize, Serialize};

/// ChFES phase labels expected in every per-rank-count run, Table-3 order.
pub const CHFES_PHASES: [&str; 7] = [
    "CF",
    "CholGS-S",
    "CholGS-CI",
    "CholGS-O",
    "RR-P",
    "RR-D",
    "RR-SR",
];

/// Wire-byte counters (cluster totals from the shared `CommStats`).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CommBytes {
    /// Total payload bytes that crossed the wire.
    pub bytes_total: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Bytes sent at FP64 wire precision.
    pub bytes_fp64: u64,
    /// Bytes sent at FP32 wire precision.
    pub bytes_fp32: u64,
}

/// Wall seconds of one profiled phase (max over the ranks of the run — the
/// critical path).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Table-3 phase label.
    pub phase: String,
    /// Wall seconds, max across ranks.
    pub seconds: f64,
}

/// One strong-scaling point: the full distributed SCF at a rank count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankRun {
    /// Ranks in the run.
    pub nranks: usize,
    /// End-to-end wall seconds of the SCF (cluster spawn included).
    pub wall_seconds: f64,
    /// `wall_seconds(1 rank) / wall_seconds(this run)`.
    pub speedup_vs_1rank: f64,
    /// Converged free energy (Ha) — must agree across rank counts.
    pub free_energy_ha: f64,
    /// SCF iterations performed.
    pub iterations: usize,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
    /// Per-ChFES-phase wall seconds (critical path over ranks).
    pub chfes_phase_seconds: Vec<PhaseSeconds>,
    /// Cluster communication volume of the run.
    pub comm: CommBytes,
}

/// FP64 vs FP32 boundary-wire comparison at a fixed rank count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireComparison {
    /// Ranks used for the comparison.
    pub nranks: usize,
    /// Free energy of the all-FP64 run (Ha).
    pub free_energy_fp64_ha: f64,
    /// Free energy with FP32 Chebyshev-filter boundary wire (Ha).
    pub free_energy_fp32_wire_ha: f64,
    /// `|fp64 - fp32 wire|` (Ha).
    pub abs_energy_diff_ha: f64,
    /// Communication volume of the FP64 SCF run.
    pub scf_comm_fp64: CommBytes,
    /// Communication volume of the FP32-wire SCF run.
    pub scf_comm_fp32: CommBytes,
    /// Ghost-exchange bytes of ONE Hamiltonian apply at FP64 wire.
    pub ghost_apply_bytes_fp64: u64,
    /// Ghost-exchange bytes of the same apply at FP32 wire (exactly half).
    pub ghost_apply_bytes_fp32: u64,
}

/// Size card of the benchmark system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemCard {
    /// Human-readable description.
    pub description: String,
    /// FE degrees of freedom.
    pub ndofs: usize,
    /// FE nodes.
    pub nnodes: usize,
    /// FE cells (upper bound on usable ranks).
    pub ncells: usize,
    /// Kohn-Sham states.
    pub n_states: usize,
    /// Electrons.
    pub n_electrons: f64,
}

/// The full `BENCH_scaling.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Provenance note.
    pub note: String,
    /// The benchmark system.
    pub system: SystemCard,
    /// One entry per rank count, ascending, starting at 1.
    pub runs: Vec<RankRun>,
    /// The FP32-wire comparison.
    pub wire: WireComparison,
}

impl ScalingReport {
    /// Schema + invariant check. `Err` carries the first violation; used
    /// both by the emitting binary (before writing) and by CI's `--check`
    /// against the committed artifact.
    pub fn validate(&self) -> Result<(), String> {
        if self.runs.is_empty() {
            return Err("no runs".into());
        }
        if self.runs[0].nranks != 1 {
            return Err("first run must be the 1-rank baseline".into());
        }
        let e0 = self.runs[0].free_energy_ha;
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 && run.nranks <= self.runs[i - 1].nranks {
                return Err(format!("rank counts not ascending at entry {i}"));
            }
            if !run.converged {
                return Err(format!("{}-rank run did not converge", run.nranks));
            }
            if !(run.wall_seconds.is_finite() && run.wall_seconds > 0.0) {
                return Err(format!("{}-rank wall time invalid", run.nranks));
            }
            if !(run.speedup_vs_1rank.is_finite() && run.speedup_vs_1rank > 0.0) {
                return Err(format!("{}-rank speedup invalid", run.nranks));
            }
            let labels: Vec<&str> = run
                .chfes_phase_seconds
                .iter()
                .map(|p| p.phase.as_str())
                .collect();
            if labels != CHFES_PHASES {
                return Err(format!(
                    "{}-rank run: ChFES phases {labels:?} != {CHFES_PHASES:?}",
                    run.nranks
                ));
            }
            if run
                .chfes_phase_seconds
                .iter()
                .any(|p| !p.seconds.is_finite() || p.seconds < 0.0)
            {
                return Err(format!("{}-rank run: invalid phase seconds", run.nranks));
            }
            if (run.free_energy_ha - e0).abs() > 1e-8 {
                return Err(format!(
                    "{}-rank energy {} drifts from 1-rank {} by > 1e-8 Ha",
                    run.nranks, run.free_energy_ha, e0
                ));
            }
            if run.nranks == 1 && run.comm.bytes_total != 0 {
                return Err("1-rank run must move no bytes".into());
            }
            if run.nranks > 1 && run.comm.bytes_total == 0 {
                return Err(format!("{}-rank run moved no bytes", run.nranks));
            }
        }
        let w = &self.wire;
        if w.abs_energy_diff_ha > 1e-8 {
            return Err(format!(
                "FP32-wire energy differs by {} Ha (> 1e-8)",
                w.abs_energy_diff_ha
            ));
        }
        if w.scf_comm_fp64.bytes_fp32 != 0 {
            return Err("FP64 run must move no FP32 bytes".into());
        }
        if w.scf_comm_fp32.bytes_fp32 == 0 {
            return Err("FP32-wire run moved no FP32 bytes".into());
        }
        if w.ghost_apply_bytes_fp32 * 2 != w.ghost_apply_bytes_fp64 {
            return Err(format!(
                "FP32 ghost exchange is not exactly half of FP64: {} vs {}",
                w.ghost_apply_bytes_fp32, w.ghost_apply_bytes_fp64
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<PhaseSeconds> {
        CHFES_PHASES
            .iter()
            .map(|&p| PhaseSeconds {
                phase: p.to_string(),
                seconds: 0.01,
            })
            .collect()
    }

    fn good_report() -> ScalingReport {
        let run = |nranks: usize, bytes: u64| RankRun {
            nranks,
            wall_seconds: 1.0 / nranks as f64,
            speedup_vs_1rank: nranks as f64,
            free_energy_ha: -1.25,
            iterations: 10,
            converged: true,
            chfes_phase_seconds: phases(),
            comm: CommBytes {
                bytes_total: bytes,
                messages: bytes / 8,
                bytes_fp64: bytes,
                bytes_fp32: 0,
            },
        };
        ScalingReport {
            note: "test".into(),
            system: SystemCard {
                description: "test".into(),
                ndofs: 216,
                nnodes: 216,
                ncells: 8,
                n_states: 4,
                n_electrons: 2.0,
            },
            runs: vec![run(1, 0), run(2, 1024), run(4, 2048)],
            wire: WireComparison {
                nranks: 4,
                free_energy_fp64_ha: -1.25,
                free_energy_fp32_wire_ha: -1.25 + 1e-10,
                abs_energy_diff_ha: 1e-10,
                scf_comm_fp64: CommBytes {
                    bytes_total: 2048,
                    messages: 256,
                    bytes_fp64: 2048,
                    bytes_fp32: 0,
                },
                scf_comm_fp32: CommBytes {
                    bytes_total: 1536,
                    messages: 256,
                    bytes_fp64: 1024,
                    bytes_fp32: 512,
                },
                ghost_apply_bytes_fp64: 800,
                ghost_apply_bytes_fp32: 400,
            },
        }
    }

    #[test]
    fn good_report_validates_and_round_trips() {
        let r = good_report();
        r.validate().unwrap();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ScalingReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.runs.len(), r.runs.len());
        assert_eq!(back.wire.ghost_apply_bytes_fp32, 400);
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let mut r = good_report();
        r.runs[1].chfes_phase_seconds.remove(0);
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[2].free_energy_ha += 1e-6;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.wire.ghost_apply_bytes_fp32 += 1;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[0].comm.bytes_total = 7;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[1].nranks = 5;
        r.runs[2].nranks = 3;
        assert!(r.validate().is_err());
    }
}
