//! Schema and validation of `BENCH_scaling.json`, the artifact emitted by
//! the `bench_scaling` binary: distributed SCF strong scaling at 1/2/4/8
//! ranks (wall time per ChFES phase, speedup, communication volume per wire
//! precision) plus the FP32-wire accuracy/volume comparison.

use serde::{Deserialize, Serialize};

/// ChFES phase labels expected in every per-rank-count run, Table-3 order.
pub const CHFES_PHASES: [&str; 7] = [
    "CF",
    "CholGS-S",
    "CholGS-CI",
    "CholGS-O",
    "RR-P",
    "RR-D",
    "RR-SR",
];

/// Wire-byte counters (cluster totals from the shared `CommStats`).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CommBytes {
    /// Total payload bytes that crossed the wire.
    pub bytes_total: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Bytes sent at FP64 wire precision.
    pub bytes_fp64: u64,
    /// Bytes sent at FP32 wire precision.
    pub bytes_fp32: u64,
}

/// Wall seconds of one profiled phase (max over the ranks of the run — the
/// critical path).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Table-3 phase label.
    pub phase: String,
    /// Wall seconds, max across ranks.
    pub seconds: f64,
}

/// One strong-scaling point: the full distributed SCF at a rank count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankRun {
    /// Ranks in the run.
    pub nranks: usize,
    /// Process-grid shape of the run as `"DOMxBANDxK"` (e.g. `"4x1x1"`).
    /// `None` on artifacts emitted before the grid existed (all such runs
    /// used the 1D slab layout, i.e. `"{nranks}x1x1"`).
    pub grid: Option<String>,
    /// End-to-end wall seconds of the SCF (cluster spawn included).
    pub wall_seconds: f64,
    /// `wall_seconds(1 rank) / wall_seconds(this run)`.
    pub speedup_vs_1rank: f64,
    /// Converged free energy (Ha) — must agree across rank counts.
    pub free_energy_ha: f64,
    /// SCF iterations performed.
    pub iterations: usize,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
    /// Per-ChFES-phase wall seconds (critical path over ranks).
    pub chfes_phase_seconds: Vec<PhaseSeconds>,
    /// Cluster communication volume of the run.
    pub comm: CommBytes,
}

/// FP64 vs FP32 boundary-wire comparison at a fixed rank count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireComparison {
    /// Ranks used for the comparison.
    pub nranks: usize,
    /// Free energy of the all-FP64 run (Ha).
    pub free_energy_fp64_ha: f64,
    /// Free energy with FP32 Chebyshev-filter boundary wire (Ha).
    pub free_energy_fp32_wire_ha: f64,
    /// `|fp64 - fp32 wire|` (Ha).
    pub abs_energy_diff_ha: f64,
    /// Communication volume of the FP64 SCF run.
    pub scf_comm_fp64: CommBytes,
    /// Communication volume of the FP32-wire SCF run.
    pub scf_comm_fp32: CommBytes,
    /// Ghost-exchange bytes of ONE Hamiltonian apply at FP64 wire.
    pub ghost_apply_bytes_fp64: u64,
    /// Ghost-exchange bytes of the same apply at FP32 wire (exactly half).
    pub ghost_apply_bytes_fp32: u64,
}

/// One process-grid layout of the SAME problem at the SAME rank count:
/// the grid sweep holds ranks fixed (8) and reshapes them across the
/// domain / band / k-group axes, so phase seconds are comparable and the
/// converged energy must be layout-invariant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridRun {
    /// Grid shape as `"DOMxBANDxK"`.
    pub grid: String,
    /// Ranks (product of the shape's axes).
    pub nranks: usize,
    /// End-to-end wall seconds of the SCF.
    pub wall_seconds: f64,
    /// Converged free energy (Ha) — must agree across layouts.
    pub free_energy_ha: f64,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
    /// Critical-path seconds of the subspace-reduction-dominated phases
    /// (`CholGS-S` + `RR-P`) — the time band parallelism shrinks.
    pub reduction_seconds: f64,
    /// Per-ChFES-phase wall seconds (critical path over ranks).
    pub chfes_phase_seconds: Vec<PhaseSeconds>,
    /// Cluster communication volume of the run.
    pub comm: CommBytes,
}

/// Cross-iteration ghost overlap on vs off at a fixed grid shape: the
/// schedule is bit-identical by construction, so the energy check is
/// exact; the ghost-wait seconds are the measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverlapComparison {
    /// Ranks used for the comparison.
    pub nranks: usize,
    /// Grid shape as `"DOMxBANDxK"`.
    pub grid: String,
    /// Seconds ranks spent blocked on ghost-row receives, overlap OFF.
    pub ghost_wait_seconds_no_overlap: f64,
    /// Same, with the next step's exchange posted behind the interior
    /// apply (overlap ON).
    pub ghost_wait_seconds_overlap: f64,
    /// Bitwise equality of the two converged free energies (must hold).
    pub free_energy_bitwise_identical: bool,
}

/// FP64 vs FP32 subspace-reduction wire (off-band-diagonal blocks of the
/// overlap and projected-Hamiltonian matrices travel FP32; the
/// band-diagonal squares and the FP64 cleanup pass keep the result
/// within 1e-8 Ha).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SubspaceFp32Ablation {
    /// Ranks used for the comparison.
    pub nranks: usize,
    /// Grid shape as `"DOMxBANDxK"`.
    pub grid: String,
    /// Free energy with all-FP64 subspace reductions (Ha).
    pub free_energy_fp64_ha: f64,
    /// Free energy with the FP32 off-diagonal subspace wire (Ha).
    pub free_energy_fp32_subspace_ha: f64,
    /// `|fp64 - fp32 subspace|` (Ha) — gated at 1e-8.
    pub abs_energy_diff_ha: f64,
    /// Communication volume of the all-FP64 run.
    pub comm_fp64: CommBytes,
    /// Communication volume of the FP32-subspace run (nonzero `bytes_fp32`).
    pub comm_fp32: CommBytes,
}

/// Size card of the benchmark system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemCard {
    /// Human-readable description.
    pub description: String,
    /// FE degrees of freedom.
    pub ndofs: usize,
    /// FE nodes.
    pub nnodes: usize,
    /// FE cells (upper bound on usable ranks).
    pub ncells: usize,
    /// Kohn-Sham states.
    pub n_states: usize,
    /// Electrons.
    pub n_electrons: f64,
}

/// The full `BENCH_scaling.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Provenance note.
    pub note: String,
    /// The benchmark system.
    pub system: SystemCard,
    /// One entry per rank count, ascending, starting at 1.
    pub runs: Vec<RankRun>,
    /// The FP32-wire comparison.
    pub wire: WireComparison,
    /// Grid-shape sweep at a fixed rank count (absent on pre-grid
    /// artifacts).
    pub grid_runs: Option<Vec<GridRun>>,
    /// Ghost-overlap on/off comparison (absent on pre-grid artifacts).
    pub overlap: Option<OverlapComparison>,
    /// FP32-subspace-wire ablation (absent on pre-grid artifacts).
    pub subspace_fp32: Option<SubspaceFp32Ablation>,
}

/// `"DOMxBANDxK"` → `(dom, band, k)`, or `None` if malformed.
fn parse_grid(s: &str) -> Option<(usize, usize, usize)> {
    let mut it = s.split('x');
    let d = it.next()?.parse().ok()?;
    let b = it.next()?.parse().ok()?;
    let k = it.next()?.parse().ok()?;
    if it.next().is_some() || d == 0 || b == 0 || k == 0 {
        return None;
    }
    Some((d, b, k))
}

impl ScalingReport {
    /// Schema + invariant check. `Err` carries the first violation; used
    /// both by the emitting binary (before writing) and by CI's `--check`
    /// against the committed artifact.
    pub fn validate(&self) -> Result<(), String> {
        if self.runs.is_empty() {
            return Err("no runs".into());
        }
        if self.runs[0].nranks != 1 {
            return Err("first run must be the 1-rank baseline".into());
        }
        let e0 = self.runs[0].free_energy_ha;
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 && run.nranks <= self.runs[i - 1].nranks {
                return Err(format!("rank counts not ascending at entry {i}"));
            }
            if !run.converged {
                return Err(format!("{}-rank run did not converge", run.nranks));
            }
            if !(run.wall_seconds.is_finite() && run.wall_seconds > 0.0) {
                return Err(format!("{}-rank wall time invalid", run.nranks));
            }
            if !(run.speedup_vs_1rank.is_finite() && run.speedup_vs_1rank > 0.0) {
                return Err(format!("{}-rank speedup invalid", run.nranks));
            }
            let labels: Vec<&str> = run
                .chfes_phase_seconds
                .iter()
                .map(|p| p.phase.as_str())
                .collect();
            if labels != CHFES_PHASES {
                return Err(format!(
                    "{}-rank run: ChFES phases {labels:?} != {CHFES_PHASES:?}",
                    run.nranks
                ));
            }
            if run
                .chfes_phase_seconds
                .iter()
                .any(|p| !p.seconds.is_finite() || p.seconds < 0.0)
            {
                return Err(format!("{}-rank run: invalid phase seconds", run.nranks));
            }
            if (run.free_energy_ha - e0).abs() > 1e-8 {
                return Err(format!(
                    "{}-rank energy {} drifts from 1-rank {} by > 1e-8 Ha",
                    run.nranks, run.free_energy_ha, e0
                ));
            }
            if run.nranks == 1 && run.comm.bytes_total != 0 {
                return Err("1-rank run must move no bytes".into());
            }
            if run.nranks > 1 && run.comm.bytes_total == 0 {
                return Err(format!("{}-rank run moved no bytes", run.nranks));
            }
            if let Some(g) = &run.grid {
                let Some((d, b, k)) = parse_grid(g) else {
                    return Err(format!("{}-rank run: malformed grid {g:?}", run.nranks));
                };
                if d * b * k != run.nranks {
                    return Err(format!(
                        "{}-rank run: grid {g} has {} ranks",
                        run.nranks,
                        d * b * k
                    ));
                }
            }
        }
        let w = &self.wire;
        if w.abs_energy_diff_ha > 1e-8 {
            return Err(format!(
                "FP32-wire energy differs by {} Ha (> 1e-8)",
                w.abs_energy_diff_ha
            ));
        }
        if w.scf_comm_fp64.bytes_fp32 != 0 {
            return Err("FP64 run must move no FP32 bytes".into());
        }
        if w.scf_comm_fp32.bytes_fp32 == 0 {
            return Err("FP32-wire run moved no FP32 bytes".into());
        }
        if w.ghost_apply_bytes_fp32 * 2 != w.ghost_apply_bytes_fp64 {
            return Err(format!(
                "FP32 ghost exchange is not exactly half of FP64: {} vs {}",
                w.ghost_apply_bytes_fp32, w.ghost_apply_bytes_fp64
            ));
        }
        // Grid-era sections are optional (pre-grid artifacts lack them) but
        // strict once present. Seconds are only sanity-checked — timing
        // orderings are machine noise; byte counts and energies are
        // deterministic and gate hard.
        if let Some(grid_runs) = &self.grid_runs {
            if grid_runs.is_empty() {
                return Err("grid_runs present but empty".into());
            }
            let eg = grid_runs[0].free_energy_ha;
            for gr in grid_runs {
                let Some((d, b, k)) = parse_grid(&gr.grid) else {
                    return Err(format!("grid run: malformed grid {:?}", gr.grid));
                };
                if d * b * k != gr.nranks {
                    return Err(format!(
                        "grid run {}: shape has {} ranks, field says {}",
                        gr.grid,
                        d * b * k,
                        gr.nranks
                    ));
                }
                if !gr.converged {
                    return Err(format!("grid run {} did not converge", gr.grid));
                }
                if (gr.free_energy_ha - eg).abs() > 1e-8 {
                    return Err(format!(
                        "grid run {} energy {} drifts from {} ({}) by > 1e-8 Ha",
                        gr.grid, gr.free_energy_ha, grid_runs[0].grid, eg
                    ));
                }
                let labels: Vec<&str> = gr
                    .chfes_phase_seconds
                    .iter()
                    .map(|p| p.phase.as_str())
                    .collect();
                if labels != CHFES_PHASES {
                    return Err(format!(
                        "grid run {}: ChFES phases {labels:?} != {CHFES_PHASES:?}",
                        gr.grid
                    ));
                }
                if !(gr.reduction_seconds.is_finite() && gr.reduction_seconds >= 0.0) {
                    return Err(format!("grid run {}: invalid reduction seconds", gr.grid));
                }
                if gr.comm.bytes_total == 0 {
                    return Err(format!("grid run {} moved no bytes", gr.grid));
                }
            }
        }
        if let Some(ov) = &self.overlap {
            if !ov.free_energy_bitwise_identical {
                return Err("overlap run energy is not bit-identical".into());
            }
            for (label, s) in [
                ("no-overlap", ov.ghost_wait_seconds_no_overlap),
                ("overlap", ov.ghost_wait_seconds_overlap),
            ] {
                if !(s.is_finite() && s >= 0.0) {
                    return Err(format!("overlap section: invalid {label} ghost wait"));
                }
            }
            if parse_grid(&ov.grid).is_none() {
                return Err(format!("overlap section: malformed grid {:?}", ov.grid));
            }
        }
        if let Some(sp) = &self.subspace_fp32 {
            if sp.abs_energy_diff_ha > 1e-8 {
                return Err(format!(
                    "FP32-subspace energy differs by {} Ha (> 1e-8)",
                    sp.abs_energy_diff_ha
                ));
            }
            if sp.comm_fp64.bytes_fp32 != 0 {
                return Err("FP64-subspace run must move no FP32 bytes".into());
            }
            if sp.comm_fp32.bytes_fp32 == 0 {
                return Err("FP32-subspace run moved no FP32 bytes".into());
            }
            if parse_grid(&sp.grid).is_none() {
                return Err(format!("subspace section: malformed grid {:?}", sp.grid));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<PhaseSeconds> {
        CHFES_PHASES
            .iter()
            .map(|&p| PhaseSeconds {
                phase: p.to_string(),
                seconds: 0.01,
            })
            .collect()
    }

    fn good_report() -> ScalingReport {
        let run = |nranks: usize, bytes: u64| RankRun {
            nranks,
            grid: Some(format!("{nranks}x1x1")),
            wall_seconds: 1.0 / nranks as f64,
            speedup_vs_1rank: nranks as f64,
            free_energy_ha: -1.25,
            iterations: 10,
            converged: true,
            chfes_phase_seconds: phases(),
            comm: CommBytes {
                bytes_total: bytes,
                messages: bytes / 8,
                bytes_fp64: bytes,
                bytes_fp32: 0,
            },
        };
        ScalingReport {
            note: "test".into(),
            system: SystemCard {
                description: "test".into(),
                ndofs: 216,
                nnodes: 216,
                ncells: 8,
                n_states: 4,
                n_electrons: 2.0,
            },
            runs: vec![run(1, 0), run(2, 1024), run(4, 2048)],
            wire: WireComparison {
                nranks: 4,
                free_energy_fp64_ha: -1.25,
                free_energy_fp32_wire_ha: -1.25 + 1e-10,
                abs_energy_diff_ha: 1e-10,
                scf_comm_fp64: CommBytes {
                    bytes_total: 2048,
                    messages: 256,
                    bytes_fp64: 2048,
                    bytes_fp32: 0,
                },
                scf_comm_fp32: CommBytes {
                    bytes_total: 1536,
                    messages: 256,
                    bytes_fp64: 1024,
                    bytes_fp32: 512,
                },
                ghost_apply_bytes_fp64: 800,
                ghost_apply_bytes_fp32: 400,
            },
            grid_runs: Some(vec![
                grid_run("8x1x1"),
                grid_run("4x2x1"),
                grid_run("2x2x2"),
            ]),
            overlap: Some(OverlapComparison {
                nranks: 8,
                grid: "4x2x1".into(),
                ghost_wait_seconds_no_overlap: 0.5,
                ghost_wait_seconds_overlap: 0.1,
                free_energy_bitwise_identical: true,
            }),
            subspace_fp32: Some(SubspaceFp32Ablation {
                nranks: 8,
                grid: "4x2x1".into(),
                free_energy_fp64_ha: -1.25,
                free_energy_fp32_subspace_ha: -1.25 + 1e-10,
                abs_energy_diff_ha: 1e-10,
                comm_fp64: CommBytes {
                    bytes_total: 4096,
                    messages: 512,
                    bytes_fp64: 4096,
                    bytes_fp32: 0,
                },
                comm_fp32: CommBytes {
                    bytes_total: 3072,
                    messages: 512,
                    bytes_fp64: 2048,
                    bytes_fp32: 1024,
                },
            }),
        }
    }

    fn grid_run(shape: &str) -> GridRun {
        let nranks = shape
            .split('x')
            .map(|p| p.parse::<usize>().unwrap())
            .product();
        GridRun {
            grid: shape.to_string(),
            nranks,
            wall_seconds: 1.0,
            free_energy_ha: -2.5,
            converged: true,
            reduction_seconds: 0.05,
            chfes_phase_seconds: phases(),
            comm: CommBytes {
                bytes_total: 4096,
                messages: 512,
                bytes_fp64: 4096,
                bytes_fp32: 0,
            },
        }
    }

    #[test]
    fn good_report_validates_and_round_trips() {
        let r = good_report();
        r.validate().unwrap();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ScalingReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.runs.len(), r.runs.len());
        assert_eq!(back.wire.ghost_apply_bytes_fp32, 400);
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let mut r = good_report();
        r.runs[1].chfes_phase_seconds.remove(0);
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[2].free_energy_ha += 1e-6;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.wire.ghost_apply_bytes_fp32 += 1;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[0].comm.bytes_total = 7;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.runs[1].nranks = 5;
        r.runs[2].nranks = 3;
        assert!(r.validate().is_err());
    }

    #[test]
    fn grid_sections_are_validated_when_present() {
        let mut r = good_report();
        r.runs[1].grid = Some("3x1x1".into()); // 3 ranks on a 2-rank run
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.grid_runs.as_mut().unwrap()[1].free_energy_ha += 1e-6;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.grid_runs.as_mut().unwrap()[2].grid = "2x2".into();
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.overlap.as_mut().unwrap().free_energy_bitwise_identical = false;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.subspace_fp32.as_mut().unwrap().abs_energy_diff_ha = 1e-7;
        assert!(r.validate().is_err());

        let mut r = good_report();
        r.subspace_fp32.as_mut().unwrap().comm_fp32.bytes_fp32 = 0;
        assert!(r.validate().is_err());
    }

    /// A PR-3-era artifact knows nothing of grids: no `grid` per run, no
    /// grid sections. It must still parse and validate.
    #[test]
    fn pre_grid_artifacts_still_parse_and_validate() {
        let mut r = good_report();
        for run in &mut r.runs {
            run.grid = None;
        }
        r.grid_runs = None;
        r.overlap = None;
        r.subspace_fp32 = None;
        let mut json = serde_json::to_string_pretty(&r).unwrap();
        // strip the keys entirely, as an old emitter would have
        json = json
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                !(t.starts_with("\"grid\"")
                    || t.starts_with("\"grid_runs\"")
                    || t.starts_with("\"overlap\"")
                    || t.starts_with("\"subspace_fp32\""))
            })
            .collect::<Vec<_>>()
            .join("\n");
        // drop the now-dangling trailing comma before each closing brace
        let json = json.replace(",\n}", "\n}").replace(",\n  }", "\n  }");
        let back: ScalingReport = serde_json::from_str(&json).unwrap();
        assert!(back.runs.iter().all(|r| r.grid.is_none()));
        assert!(back.grid_runs.is_none() && back.overlap.is_none());
        back.validate().unwrap();
    }
}
