//! Schema and validation of `BENCH_serve.json`, the artifact emitted by the
//! `bench_serve` binary: a burst of miniature DFT jobs pushed through the
//! multi-tenant `dft-serve` scheduler, with an injected rank kill, a forced
//! preemption/resume cycle, converged-state cache reuse, and latency
//! percentiles over the whole burst.

use serde::{Deserialize, Serialize};

/// The server and workload shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeSetup {
    /// Rank slots in the worker pool at start (kills shrink it).
    pub pool_ranks: usize,
    /// Distinct tenants submitting.
    pub tenants: usize,
    /// Physically distinct problems in the burst (cache-key classes).
    pub distinct_problems: usize,
    /// Snapshot cadence in SCF iterations.
    pub checkpoint_every: usize,
    /// Communicator receive deadline in seconds (failure-detection bound).
    pub timeout_seconds: f64,
}

/// Job accounting over the whole run. `lost` is admitted minus delivered
/// and must be zero: every accepted job gets exactly one outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeTraffic {
    /// Jobs accepted by admission control.
    pub submitted: usize,
    /// Jobs that delivered a `Completed` outcome.
    pub completed: usize,
    /// Jobs that delivered a `Failed` outcome.
    pub failed: usize,
    /// Admitted jobs that never delivered an outcome.
    pub lost: usize,
    /// High-water mark of the scheduler queue.
    pub max_queue_depth: usize,
}

/// Latency percentiles across every completed job, admission to outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Worst-case latency (ms).
    pub max_ms: f64,
    /// End-to-end wall seconds for the whole burst.
    pub wall_seconds: f64,
    /// Completed jobs per wall second.
    pub throughput_jobs_per_s: f64,
}

/// Converged-state cache effectiveness. A warm start resumes from a donor
/// job's exported converged snapshot and must reconverge in a small
/// fraction of the cold iteration count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeCacheStats {
    /// Cache lookups that found a donor snapshot.
    pub hits: u64,
    /// Cache lookups that found nothing.
    pub misses: u64,
    /// Distinct `FeSpace` discretizations materialized (shared tables).
    pub spaces_built: usize,
    /// Completed single-SCF jobs that ran cold.
    pub cold_jobs: usize,
    /// Completed single-SCF jobs that warm-started from the cache.
    pub warm_jobs: usize,
    /// Mean SCF iterations of the cold jobs.
    pub cold_iterations_mean: f64,
    /// Mean SCF iterations of the warm jobs.
    pub warm_iterations_mean: f64,
    /// `100 * warm_iterations_mean / cold_iterations_mean`; the acceptance
    /// bound is 25%.
    pub warm_over_cold_percent: f64,
}

/// Injected disruptions and how the scheduler absorbed them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeDisruptions {
    /// Jobs submitted with a rank-kill fault plan.
    pub injected_kills: usize,
    /// Cluster relaunches forced by rank loss.
    pub recoveries: u64,
    /// Ranks permanently burned from the pool.
    pub ranks_burned: usize,
    /// Preemption cycles (raise token -> snapshot -> requeue -> resume).
    pub preemptions: u64,
}

/// Energy parity between served jobs and dedicated single-job runs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeAccuracy {
    /// Dedicated single-job reference solves (one per distinct problem).
    pub reference_jobs: usize,
    /// Served single-SCF jobs compared against their reference.
    pub compared_jobs: usize,
    /// Worst `|E_served - E_reference|` over all compared jobs (Ha).
    pub max_abs_energy_diff_ha: f64,
}

/// The full `BENCH_serve.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeBench {
    /// Provenance note.
    pub note: String,
    /// Server and workload shape.
    pub setup: ServeSetup,
    /// Job accounting.
    pub traffic: ServeTraffic,
    /// Latency percentiles.
    pub latency: ServeLatency,
    /// Cache effectiveness.
    pub cache: ServeCacheStats,
    /// Kills and preemptions.
    pub disruptions: ServeDisruptions,
    /// Energy parity vs dedicated runs.
    pub accuracy: ServeAccuracy,
}

impl ServeBench {
    /// Schema + invariant check; used by the emitting binary before writing
    /// and by CI's `--check` against the committed artifact.
    pub fn validate(&self) -> Result<(), String> {
        let s = &self.setup;
        if s.pool_ranks < 2 {
            return Err("pool must have at least two rank slots".into());
        }
        if s.tenants < 2 {
            return Err("burst must exercise multi-tenant fairness".into());
        }
        if s.distinct_problems == 0 || s.checkpoint_every == 0 {
            return Err("degenerate workload shape".into());
        }
        if !(s.timeout_seconds.is_finite() && s.timeout_seconds > 0.0) {
            return Err("receive deadline invalid".into());
        }

        let t = &self.traffic;
        if t.submitted < 500 {
            return Err(format!(
                "burst must queue at least 500 jobs, got {}",
                t.submitted
            ));
        }
        if t.lost != 0 {
            return Err(format!("{} admitted jobs were lost", t.lost));
        }
        if t.failed != 0 {
            return Err(format!("{} jobs failed", t.failed));
        }
        if t.completed != t.submitted {
            return Err(format!(
                "completed {} != submitted {}",
                t.completed, t.submitted
            ));
        }
        if t.max_queue_depth == 0 {
            return Err("burst never actually queued".into());
        }

        let l = &self.latency;
        for (name, v) in [("p50", l.p50_ms), ("p99", l.p99_ms), ("max", l.max_ms)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("latency {name} invalid"));
            }
        }
        if l.p50_ms > l.p99_ms || l.p99_ms > l.max_ms {
            return Err("latency percentiles are not monotone".into());
        }
        if !(l.wall_seconds.is_finite() && l.wall_seconds > 0.0) {
            return Err("wall time invalid".into());
        }
        if !(l.throughput_jobs_per_s.is_finite() && l.throughput_jobs_per_s > 0.0) {
            return Err("throughput invalid".into());
        }

        let c = &self.cache;
        if c.hits == 0 || c.warm_jobs == 0 {
            return Err("burst produced no cache hits".into());
        }
        if c.cold_jobs == 0 {
            return Err("burst had no cold jobs to compare against".into());
        }
        if !(c.cold_iterations_mean.is_finite() && c.cold_iterations_mean > 0.0) {
            return Err("cold iteration mean invalid".into());
        }
        let ratio = 100.0 * c.warm_iterations_mean / c.cold_iterations_mean;
        if (ratio - c.warm_over_cold_percent).abs() > 1e-9 {
            return Err("warm_over_cold_percent inconsistent with the means".into());
        }
        if c.warm_over_cold_percent > 25.0 {
            return Err(format!(
                "cache hits average {:.1}% of the cold iteration count (> 25%)",
                c.warm_over_cold_percent
            ));
        }
        if c.spaces_built == 0 {
            return Err("no FeSpace was ever built".into());
        }

        let d = &self.disruptions;
        if d.injected_kills == 0 {
            return Err("burst must inject at least one rank kill".into());
        }
        if d.recoveries < d.injected_kills as u64 {
            return Err("every injected kill must force a recovery".into());
        }
        if d.ranks_burned == 0 {
            return Err("the killed rank was never burned from the pool".into());
        }
        if d.ranks_burned >= s.pool_ranks {
            return Err("kills burned the entire pool".into());
        }
        if d.preemptions == 0 {
            return Err("burst must include a preemption/resume cycle".into());
        }

        let a = &self.accuracy;
        if a.reference_jobs == 0 || a.compared_jobs == 0 {
            return Err("no energy-parity comparison was made".into());
        }
        if !a.max_abs_energy_diff_ha.is_finite() {
            return Err("energy diff invalid".into());
        }
        if a.max_abs_energy_diff_ha > 1e-10 {
            return Err(format!(
                "served energies drift from dedicated runs by {:.3e} Ha (> 1e-10)",
                a.max_abs_energy_diff_ha
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> ServeBench {
        ServeBench {
            note: "test".into(),
            setup: ServeSetup {
                pool_ranks: 4,
                tenants: 4,
                distinct_problems: 8,
                checkpoint_every: 2,
                timeout_seconds: 1.5,
            },
            traffic: ServeTraffic {
                submitted: 512,
                completed: 512,
                failed: 0,
                lost: 0,
                max_queue_depth: 480,
            },
            latency: ServeLatency {
                p50_ms: 900.0,
                p99_ms: 3200.0,
                max_ms: 4100.0,
                wall_seconds: 6.0,
                throughput_jobs_per_s: 512.0 / 6.0,
            },
            cache: ServeCacheStats {
                hits: 490,
                misses: 22,
                spaces_built: 1,
                cold_jobs: 10,
                warm_jobs: 490,
                cold_iterations_mean: 12.0,
                warm_iterations_mean: 1.5,
                warm_over_cold_percent: 100.0 * 1.5 / 12.0,
            },
            disruptions: ServeDisruptions {
                injected_kills: 1,
                recoveries: 1,
                ranks_burned: 1,
                preemptions: 1,
            },
            accuracy: ServeAccuracy {
                reference_jobs: 8,
                compared_jobs: 500,
                max_abs_energy_diff_ha: 4e-12,
            },
        }
    }

    #[test]
    fn good_report_validates_and_round_trips() {
        let r = good();
        r.validate().unwrap();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ServeBench = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.traffic.submitted, 512);
    }

    #[test]
    fn validation_rejects_violations() {
        let mut r = good();
        r.traffic.submitted = 499;
        r.traffic.completed = 499;
        assert!(r.validate().is_err(), "under-500 burst must be rejected");

        let mut r = good();
        r.traffic.lost = 1;
        assert!(r.validate().is_err(), "lost jobs must be rejected");

        let mut r = good();
        r.traffic.failed = 1;
        assert!(r.validate().is_err());

        let mut r = good();
        r.disruptions.injected_kills = 0;
        assert!(r.validate().is_err(), "a kill must be injected");

        let mut r = good();
        r.disruptions.preemptions = 0;
        assert!(r.validate().is_err(), "a preemption must occur");

        let mut r = good();
        r.cache.warm_iterations_mean = 4.0;
        r.cache.warm_over_cold_percent = 100.0 * 4.0 / 12.0;
        assert!(r.validate().is_err(), "warm/cold over 25% must be rejected");

        let mut r = good();
        r.cache.warm_over_cold_percent += 1.0;
        assert!(r.validate().is_err(), "inconsistent ratio must be rejected");

        let mut r = good();
        r.accuracy.max_abs_energy_diff_ha = 1e-9;
        assert!(r.validate().is_err(), "energy drift must be rejected");

        let mut r = good();
        r.latency.p50_ms = r.latency.p99_ms + 1.0;
        assert!(r.validate().is_err(), "non-monotone percentiles rejected");
    }
}
