//! Schema and validation of `BENCH_recovery.json`, the artifact emitted by
//! the `bench_recovery` binary: checkpoint overhead of the distributed SCF
//! and the wall cost plus reconvergence accuracy of a kill-one-rank /
//! restart-from-snapshot recovery.

use crate::scaling::SystemCard;
use serde::{Deserialize, Serialize};

/// The uninterrupted reference run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaselineRun {
    /// Ranks in the run.
    pub nranks: usize,
    /// End-to-end wall seconds (cluster spawn included).
    pub wall_seconds: f64,
    /// SCF iterations performed.
    pub iterations: usize,
    /// Converged free energy (Ha).
    pub free_energy_ha: f64,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
}

/// The same run with periodic snapshots enabled.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointRun {
    /// Snapshot cadence in SCF iterations.
    pub checkpoint_every: usize,
    /// End-to-end wall seconds with checkpointing on.
    pub wall_seconds: f64,
    /// Complete snapshots retained on disk at the end (pruned to the
    /// newest two).
    pub snapshots_retained: usize,
    /// Bytes of the retained snapshots (all rank shards).
    pub snapshot_bytes: u64,
    /// `100 * (wall / baseline wall - 1)` — may be negative in the noise
    /// at miniature scale.
    pub overhead_percent: f64,
}

/// Kill-one-rank recovery through the restart driver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryRun {
    /// Rank killed by the fault plan.
    pub kill_rank: usize,
    /// Epoch (1-based SCF iteration) the kill fires at.
    pub kill_epoch: u64,
    /// Communicator receive deadline in seconds (failure-detection latency
    /// bound for the survivors).
    pub timeout_seconds: f64,
    /// Cluster launches (must be 2: the killed run plus one restart).
    pub attempts: usize,
    /// Ranks of the first launch.
    pub initial_nranks: usize,
    /// Ranks of the successful relaunch.
    pub final_nranks: usize,
    /// Snapshot iteration the relaunch resumed from.
    pub resumed_from_iteration: usize,
    /// Wall seconds of the whole kill + drain + relaunch + reconverge.
    pub wall_seconds: f64,
    /// Free energy of the recovered run (Ha).
    pub free_energy_ha: f64,
    /// `|recovered - baseline|` free energy (Ha).
    pub abs_energy_diff_ha: f64,
    /// Whether the recovered run converged.
    pub converged: bool,
}

/// The full `BENCH_recovery.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryBench {
    /// Provenance note.
    pub note: String,
    /// The benchmark system.
    pub system: SystemCard,
    /// Uninterrupted reference.
    pub baseline: BaselineRun,
    /// Checkpoint-overhead measurement.
    pub checkpointing: CheckpointRun,
    /// Kill-and-restart measurement.
    pub recovery: RecoveryRun,
}

impl RecoveryBench {
    /// Schema + invariant check; used by the emitting binary before writing
    /// and by CI's `--check` against the committed artifact.
    pub fn validate(&self) -> Result<(), String> {
        let b = &self.baseline;
        if !b.converged {
            return Err("baseline did not converge".into());
        }
        if !(b.wall_seconds.is_finite() && b.wall_seconds > 0.0) {
            return Err("baseline wall time invalid".into());
        }
        if b.nranks < 2 {
            return Err("baseline must be a multi-rank run".into());
        }

        let c = &self.checkpointing;
        if c.checkpoint_every == 0 {
            return Err("checkpoint cadence must be positive".into());
        }
        if !(c.wall_seconds.is_finite() && c.wall_seconds > 0.0) {
            return Err("checkpointing wall time invalid".into());
        }
        if c.snapshots_retained == 0 || c.snapshot_bytes == 0 {
            return Err("checkpointing run left no snapshots on disk".into());
        }
        if !c.overhead_percent.is_finite() {
            return Err("checkpoint overhead invalid".into());
        }

        let r = &self.recovery;
        if !r.converged {
            return Err("recovered run did not converge".into());
        }
        if r.attempts != 2 {
            return Err(format!(
                "one kill must cost one restart, got {} attempts",
                r.attempts
            ));
        }
        if r.initial_nranks != b.nranks {
            return Err("recovery must start at the baseline rank count".into());
        }
        if r.final_nranks + 1 != r.initial_nranks {
            return Err("restart must drop exactly the killed rank".into());
        }
        if r.kill_rank >= r.initial_nranks {
            return Err("killed rank out of range".into());
        }
        if !(r.timeout_seconds.is_finite() && r.timeout_seconds > 0.0) {
            return Err("recovery timeout invalid".into());
        }
        if !(r.wall_seconds.is_finite() && r.wall_seconds > 0.0) {
            return Err("recovery wall time invalid".into());
        }
        if r.resumed_from_iteration == 0
            || !r.resumed_from_iteration.is_multiple_of(c.checkpoint_every)
        {
            return Err(format!(
                "resume iteration {} is not a checkpoint multiple of {}",
                r.resumed_from_iteration, c.checkpoint_every
            ));
        }
        let d = (r.free_energy_ha - b.free_energy_ha).abs();
        if (d - r.abs_energy_diff_ha).abs() > 1e-15 {
            return Err("abs_energy_diff_ha is not |recovered - baseline|".into());
        }
        if d > 1e-10 {
            return Err(format!(
                "recovered energy drifts from baseline by {d:.3e} Ha (> 1e-10)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> RecoveryBench {
        RecoveryBench {
            note: "test".into(),
            system: SystemCard {
                description: "test".into(),
                ndofs: 216,
                nnodes: 216,
                ncells: 8,
                n_states: 4,
                n_electrons: 2.0,
            },
            baseline: BaselineRun {
                nranks: 4,
                wall_seconds: 0.5,
                iterations: 12,
                free_energy_ha: -1.25,
                converged: true,
            },
            checkpointing: CheckpointRun {
                checkpoint_every: 2,
                wall_seconds: 0.55,
                snapshots_retained: 2,
                snapshot_bytes: 40_000,
                overhead_percent: 10.0,
            },
            recovery: RecoveryRun {
                kill_rank: 2,
                kill_epoch: 3,
                timeout_seconds: 2.0,
                attempts: 2,
                initial_nranks: 4,
                final_nranks: 3,
                resumed_from_iteration: 2,
                wall_seconds: 3.1,
                free_energy_ha: -1.25 + 5e-12,
                abs_energy_diff_ha: 5e-12,
                converged: true,
            },
        }
    }

    #[test]
    fn good_report_validates_and_round_trips() {
        let r = good();
        r.validate().unwrap();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: RecoveryBench = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.recovery.final_nranks, 3);
    }

    #[test]
    fn validation_rejects_violations() {
        let mut r = good();
        r.recovery.attempts = 3;
        assert!(r.validate().is_err());

        let mut r = good();
        r.recovery.free_energy_ha += 1e-6;
        r.recovery.abs_energy_diff_ha = (r.recovery.free_energy_ha - (-1.25f64)).abs();
        assert!(r.validate().is_err());

        let mut r = good();
        r.recovery.abs_energy_diff_ha = 0.0;
        assert!(r.validate().is_err(), "inconsistent diff must be rejected");

        let mut r = good();
        r.checkpointing.snapshot_bytes = 0;
        assert!(r.validate().is_err());

        let mut r = good();
        r.recovery.final_nranks = 4;
        assert!(r.validate().is_err());

        let mut r = good();
        r.recovery.resumed_from_iteration = 3;
        assert!(r.validate().is_err());
    }
}
