//! # dft-bench
//!
//! The benchmark/reproduction harness: one binary per table and figure of
//! the paper (see DESIGN.md Sec. 4 for the experiment index), plus shared
//! benchmark-system definitions and the miniature invDFT->MLXC training
//! pipeline used by several experiments.

#![deny(unsafe_code)]

pub mod md;
pub mod pipeline;
pub mod recovery;
pub mod scaling;
pub mod serve;
pub mod systems;

pub use md::MdBench;
pub use pipeline::{train_mlxc_from_invdft, MiniSystem, PipelineConfig};
pub use recovery::RecoveryBench;
pub use scaling::{CommBytes, RankRun, ScalingReport, WireComparison, CHFES_PHASES};
pub use serve::ServeBench;
pub use systems::{
    disloc_mg_y, twin_disloc_mg_y_a, twin_disloc_mg_y_b, twin_disloc_mg_y_c, ybcd_quasicrystal,
};

/// Pretty-print a separator-titled section.
pub fn section(title: &str) {
    println!();
    println!("==== {title} ====");
}
