//! Versioned on-disk SCF snapshots for checkpoint/restart.
//!
//! Production DFT-FE runs at the paper's scale survive node loss by
//! periodically serializing the SCF state and restarting from the last
//! complete snapshot. This module is that store at miniature scale: every
//! `checkpoint_every` iterations each rank writes one self-describing
//! binary file holding the *replicated* SCF state (input density, chemical
//! potential, Anderson mixer history, per-k filter windows, residual
//! history) plus its *sharded* state (owned global DoF ids and the local
//! wavefunction rows), then rank 0 marks the snapshot `COMPLETE` after a
//! barrier. A restart — possibly at a *different* rank count — assembles
//! the full wavefunction block from all shard files and restricts it to the
//! freshly derived deterministic partition.
//!
//! The format is deliberately exact: every `f64` travels as its own
//! little-endian bit pattern (no text round-trip), so a same-rank-count
//! resume replays bit-identically. Files end in an FNV-1a checksum and
//! are written via temp-file + rename, so a torn write is detected (or
//! never visible) rather than silently resumed from.

use crate::grid::GridShape;
use crate::operator::WireScalar;
use dft_linalg::matrix::Matrix;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// On-disk format version (bumped on any layout change). Version 2 adds
/// the writing run's process-grid shape and a per-shard list of the global
/// k-point indices its wavefunction blocks cover (band replicas write no
/// blocks at all); version 1 shards — every rank, every k — still load.
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: [u8; 8] = *b"DFTCKPT1";
const COMPLETE_MARKER: &str = "COMPLETE";

/// The replicated part of the SCF state captured at the top of an
/// iteration — identical on every rank, checkpointed by each.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedScfState {
    /// SCF iterations completed before this snapshot (the restart resumes
    /// at this iteration index).
    pub iteration: usize,
    /// Input density at the top of the iteration (nodal).
    pub rho_in: Vec<f64>,
    /// Chemical potential from the previous iteration.
    pub mu: f64,
    /// Anderson mixer `(rho_in, residual)` history, oldest first.
    pub mixer_history: Vec<(Vec<f64>, Vec<f64>)>,
    /// Per-k-point Chebyshev filter windows `(a0, a)`.
    pub filter_windows: Vec<Option<(f64, f64)>>,
    /// Density residual per completed iteration.
    pub residual_history: Vec<f64>,
}

/// A snapshot loaded back from disk, with the wavefunction block assembled
/// to full DoF rows (ready to restrict to any new partition — including a
/// different rank count or process-grid shape).
pub struct LoadedCheckpoint<T> {
    /// The replicated SCF state.
    pub state: ReplicatedScfState,
    /// Per k-point: the full `ndofs x n_states` wavefunction block.
    pub psi_full: Vec<Matrix<T>>,
    /// Rank count of the run that wrote the snapshot.
    pub nranks_at_write: usize,
    /// Process-grid shape of the writing run (version-1 snapshots report
    /// the 1D slab shape).
    pub grid_at_write: GridShape,
}

/// Directory holding one iteration's snapshot under `root`.
pub fn iter_dir(root: &Path, iteration: usize) -> PathBuf {
    root.join(format!("iter-{iteration:06}"))
}

/// Job-scoped snapshot namespace under a shared checkpoint root.
///
/// [`finalize`]'s keep-last-2 pruning assumes one writer per directory: two
/// jobs snapshotting into the *same* `checkpoint_dir` would prune each
/// other's `COMPLETE` snapshots (job A's `finalize` deletes job B's older
/// `iter-*` directories and vice versa). Multi-job drivers — the `dft-serve`
/// scheduler foremost — must therefore give every job its own subdirectory;
/// this helper is the canonical layout (`<root>/job-<id>/`). Pruning walks
/// only `iter-*` entries, so sibling job directories under one root are
/// never touched by another job's `finalize`.
pub fn job_dir(root: &Path, job_id: u64) -> PathBuf {
    root.join(format!("job-{job_id:08}"))
}

fn rank_file(root: &Path, iteration: usize, rank: usize) -> PathBuf {
    iter_dir(root, iteration).join(format!("rank-{rank}.ckpt"))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    push_u64(buf, vs.len() as u64);
    for &v in vs {
        push_f64(buf, v);
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Byte-cursor reader with explicit bounds errors.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad("checkpoint truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        // dftlint:allow(L001, reason="take(4) returns exactly 4 bytes or errors; try_into cannot fail")
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        // dftlint:allow(L001, reason="take(8) returns exactly 8 bytes or errors; try_into cannot fail")
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        // dftlint:allow(L001, reason="take(8) returns exactly 8 bytes or errors; try_into cannot fail")
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self) -> io::Result<Vec<f64>> {
        let n = self.u64()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(bad("checkpoint length field out of range"));
        }
        (0..n).map(|_| self.f64()).collect()
    }
}

/// Serialize and write this rank's shard of a snapshot on the 1D slab
/// layout (every rank holds every k-point). Returns the number of bytes
/// written. The write is atomic (temp file + rename); the snapshot only
/// becomes restartable once [`finalize`] adds the `COMPLETE` marker.
pub fn write_rank<T: WireScalar>(
    root: &Path,
    rank: usize,
    nranks: usize,
    ndofs: usize,
    state: &ReplicatedScfState,
    owned: &[u32],
    psi_local: &[Matrix<T>],
) -> io::Result<u64> {
    let ks: Vec<usize> = (0..psi_local.len()).collect();
    let n_states = psi_local.first().map_or(0, Matrix::ncols);
    write_rank_grid(
        root,
        rank,
        nranks,
        ndofs,
        state,
        owned,
        psi_local,
        &ks,
        psi_local.len(),
        n_states,
        GridShape::slab(nranks),
    )
}

/// [`write_rank`] for an arbitrary process grid: `psi_local` holds this
/// rank's blocks for the global k-point indices `ks` (band replicas pass
/// both empty — they checkpoint only the replicated state), `nk` is the
/// run's total k-point count and `shape` the writing grid.
#[allow(clippy::too_many_arguments)]
pub fn write_rank_grid<T: WireScalar>(
    root: &Path,
    rank: usize,
    nranks: usize,
    ndofs: usize,
    state: &ReplicatedScfState,
    owned: &[u32],
    psi_local: &[Matrix<T>],
    ks: &[usize],
    nk: usize,
    n_states: usize,
    shape: GridShape,
) -> io::Result<u64> {
    let dir = iter_dir(root, state.iteration);
    fs::create_dir_all(&dir)?;

    assert_eq!(psi_local.len(), ks.len(), "one block per listed k");
    assert!(ks.iter().all(|&ik| ik < nk), "k index out of range");
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(rank as u32).to_le_bytes());
    buf.extend_from_slice(&(nranks as u32).to_le_bytes());
    buf.push(u8::from(T::COMPONENTS == 2));
    push_u64(&mut buf, state.iteration as u64);
    push_u64(&mut buf, state.rho_in.len() as u64);
    push_u64(&mut buf, ndofs as u64);
    push_u64(&mut buf, n_states as u64);
    push_u64(&mut buf, nk as u64);
    // version-2 extension: the writing grid and this shard's k coverage
    buf.extend_from_slice(&(shape.n_dom as u32).to_le_bytes());
    buf.extend_from_slice(&(shape.n_band as u32).to_le_bytes());
    buf.extend_from_slice(&(shape.n_kgrp as u32).to_le_bytes());
    push_u64(&mut buf, ks.len() as u64);
    for &ik in ks {
        push_u64(&mut buf, ik as u64);
    }

    push_f64s(&mut buf, &state.rho_in);
    push_f64(&mut buf, state.mu);
    push_u64(&mut buf, state.mixer_history.len() as u64);
    for (rho, res) in &state.mixer_history {
        push_f64s(&mut buf, rho);
        push_f64s(&mut buf, res);
    }
    push_u64(&mut buf, state.filter_windows.len() as u64);
    for w in &state.filter_windows {
        match w {
            Some((a0, a)) => {
                buf.push(1);
                push_f64(&mut buf, *a0);
                push_f64(&mut buf, *a);
            }
            None => {
                buf.push(0);
                push_f64(&mut buf, 0.0);
                push_f64(&mut buf, 0.0);
            }
        }
    }
    push_f64s(&mut buf, &state.residual_history);

    push_u64(&mut buf, owned.len() as u64);
    for &d in owned {
        buf.extend_from_slice(&d.to_le_bytes());
    }
    for m in psi_local {
        assert_eq!(m.nrows(), owned.len());
        assert_eq!(m.ncols(), n_states);
        let mut comps = Vec::with_capacity(m.nrows() * T::COMPONENTS);
        for j in 0..m.ncols() {
            comps.clear();
            for &v in m.col(j) {
                T::pack_into(v, &mut comps);
            }
            for &c in &comps {
                push_f64(&mut buf, c);
            }
        }
    }

    let sum = fnv1a(&buf);
    push_u64(&mut buf, sum);

    let path = rank_file(root, state.iteration, rank);
    let tmp = path.with_extension(format!("tmp.{rank}"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(buf.len() as u64)
}

/// Mark `iteration`'s snapshot complete (call from rank 0 only, after a
/// cluster barrier guarantees every rank file has landed), then prune all
/// older snapshot directories beyond the newest `keep_last` complete ones.
pub fn finalize(root: &Path, iteration: usize, keep_last: usize) -> io::Result<()> {
    let marker = iter_dir(root, iteration).join(COMPLETE_MARKER);
    fs::write(marker, b"ok\n")?;
    // prune: keep the newest `keep_last` complete snapshots, drop the rest
    let mut complete = list_snapshots(root)?
        .into_iter()
        .filter(|&(_, done)| done)
        .map(|(it, _)| it)
        .collect::<Vec<_>>();
    complete.sort_unstable();
    let cutoff = complete
        .len()
        .checked_sub(keep_last.max(1))
        .map(|i| complete[i..].to_vec())
        .unwrap_or(complete);
    for (it, _) in list_snapshots(root)? {
        if !cutoff.contains(&it) && it < iteration {
            let _ = fs::remove_dir_all(iter_dir(root, it));
        }
    }
    Ok(())
}

fn list_snapshots(root: &Path) -> io::Result<Vec<(usize, bool)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name.strip_prefix("iter-") {
            if let Ok(it) = num.parse::<usize>() {
                let done = entry.path().join(COMPLETE_MARKER).exists();
                out.push((it, done));
            }
        }
    }
    Ok(out)
}

/// The newest iteration with a `COMPLETE` snapshot under `root`, if any.
pub fn latest_complete(root: &Path) -> Option<usize> {
    list_snapshots(root)
        .ok()?
        .into_iter()
        .filter(|&(_, done)| done)
        .map(|(it, _)| it)
        .max()
}

/// Load `iteration`'s snapshot, verifying version and checksums, and
/// assemble the full wavefunction block from every rank's shard. Works
/// regardless of the restarting run's rank count.
pub fn load<T: WireScalar>(root: &Path, iteration: usize) -> io::Result<LoadedCheckpoint<T>> {
    let first = read_verified(&rank_file(root, iteration, 0))?;
    let mut cur = Cur {
        buf: &first,
        pos: 0,
    };
    let header = parse_header::<T>(&mut cur, iteration)?;
    let state = parse_replicated(&mut cur, &header)?;
    let mut psi_full: Vec<Matrix<T>> = (0..header.nk)
        .map(|_| Matrix::<T>::zeros(header.ndofs, header.n_states))
        .collect();
    absorb_shard::<T>(&mut cur, &header, &mut psi_full)?;

    for rank in 1..header.nranks {
        let bytes = read_verified(&rank_file(root, iteration, rank))?;
        let mut cur = Cur {
            buf: &bytes,
            pos: 0,
        };
        let h = parse_header::<T>(&mut cur, iteration)?;
        if h.nranks != header.nranks
            || h.ndofs != header.ndofs
            || h.n_states != header.n_states
            || h.nk != header.nk
        {
            return Err(bad(format!("rank {rank} shard header mismatch")));
        }
        let s = parse_replicated(&mut cur, &h)?;
        if s.iteration != state.iteration {
            return Err(bad(format!("rank {rank} iteration mismatch")));
        }
        absorb_shard::<T>(&mut cur, &h, &mut psi_full)?;
    }

    Ok(LoadedCheckpoint {
        state,
        psi_full,
        nranks_at_write: header.nranks,
        grid_at_write: header.shape,
    })
}

struct Header {
    nranks: usize,
    iteration: usize,
    nnodes: usize,
    ndofs: usize,
    n_states: usize,
    nk: usize,
    /// Writing run's grid shape (slab for version-1 files).
    shape: GridShape,
    /// Global k indices of this shard's psi blocks, in block order
    /// (version 1: all of `0..nk`).
    ks: Vec<usize>,
}

fn read_verified(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 8 {
        return Err(bad("checkpoint file too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    // dftlint:allow(L001, reason="split_at(len - 8) makes tail exactly 8 bytes; try_into cannot fail")
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(bad(format!("checksum mismatch in {}", path.display())));
    }
    bytes.truncate(bytes.len() - 8);
    Ok(bytes)
}

fn parse_header<T: WireScalar>(cur: &mut Cur<'_>, iteration: usize) -> io::Result<Header> {
    if cur.take(8)? != MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    let version = cur.u32()?;
    if version == 0 || version > CHECKPOINT_VERSION {
        return Err(bad(format!(
            "checkpoint version {version}, expected 1..={CHECKPOINT_VERSION}"
        )));
    }
    let _rank = cur.u32()?;
    let nranks = cur.u32()? as usize;
    let is_complex = cur.u8()? != 0;
    if is_complex != (T::COMPONENTS == 2) {
        return Err(bad("checkpoint scalar kind mismatch (real vs complex)"));
    }
    let it = cur.u64()? as usize;
    if it != iteration {
        return Err(bad(format!(
            "checkpoint iteration {it}, expected {iteration}"
        )));
    }
    let nnodes = cur.u64()? as usize;
    let ndofs = cur.u64()? as usize;
    let n_states = cur.u64()? as usize;
    let nk = cur.u64()? as usize;
    if nranks == 0 || nk == 0 {
        return Err(bad("degenerate checkpoint header"));
    }
    let (shape, ks) = if version >= 2 {
        let n_dom = cur.u32()? as usize;
        let n_band = cur.u32()? as usize;
        let n_kgrp = cur.u32()? as usize;
        if n_dom == 0 || n_band == 0 || n_kgrp == 0 || n_dom * n_band * n_kgrp != nranks {
            return Err(bad("checkpoint grid shape does not tile its rank count"));
        }
        let nks = cur.u64()? as usize;
        if nks > nk {
            return Err(bad("shard covers more k-points than the run has"));
        }
        let mut ks = Vec::with_capacity(nks);
        for _ in 0..nks {
            let ik = cur.u64()? as usize;
            if ik >= nk {
                return Err(bad("shard k index out of range"));
            }
            ks.push(ik);
        }
        (GridShape::new(n_dom, n_band, n_kgrp), ks)
    } else {
        (GridShape::slab(nranks), (0..nk).collect())
    };
    Ok(Header {
        nranks,
        iteration: it,
        nnodes,
        ndofs,
        n_states,
        nk,
        shape,
        ks,
    })
}

fn parse_replicated(cur: &mut Cur<'_>, h: &Header) -> io::Result<ReplicatedScfState> {
    let rho_in = cur.f64s()?;
    if rho_in.len() != h.nnodes {
        return Err(bad("rho_in length mismatch"));
    }
    let mu = cur.f64()?;
    let m = cur.u64()? as usize;
    let mut mixer_history = Vec::with_capacity(m);
    for _ in 0..m {
        let rho = cur.f64s()?;
        let res = cur.f64s()?;
        if rho.len() != h.nnodes || res.len() != h.nnodes {
            return Err(bad("mixer history length mismatch"));
        }
        mixer_history.push((rho, res));
    }
    let nw = cur.u64()? as usize;
    let mut filter_windows = Vec::with_capacity(nw);
    for _ in 0..nw {
        let flag = cur.u8()?;
        let a0 = cur.f64()?;
        let a = cur.f64()?;
        filter_windows.push((flag != 0).then_some((a0, a)));
    }
    let residual_history = cur.f64s()?;
    Ok(ReplicatedScfState {
        iteration: h.iteration,
        rho_in,
        mu,
        mixer_history,
        filter_windows,
        residual_history,
    })
}

fn absorb_shard<T: WireScalar>(
    cur: &mut Cur<'_>,
    h: &Header,
    psi_full: &mut [Matrix<T>],
) -> io::Result<()> {
    let n_owned = cur.u64()? as usize;
    if n_owned > h.ndofs {
        return Err(bad("shard larger than DoF space"));
    }
    let mut owned = Vec::with_capacity(n_owned);
    for _ in 0..n_owned {
        // dftlint:allow(L001, reason="take(4) returns exactly 4 bytes or errors; try_into cannot fail")
        let d = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
        if d as usize >= h.ndofs {
            return Err(bad("owned DoF id out of range"));
        }
        owned.push(d);
    }
    let mut comps = vec![0.0f64; n_owned * T::COMPONENTS];
    for &ik in &h.ks {
        let full = &mut psi_full[ik];
        for j in 0..h.n_states {
            for c in comps.iter_mut() {
                *c = cur.f64()?;
            }
            let col = full.col_mut(j);
            for (l, &d) in owned.iter().enumerate() {
                col[d as usize] = T::unpack_at(&comps, l);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_linalg::scalar::C64;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dft-ckpt-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_state(iteration: usize, nnodes: usize) -> ReplicatedScfState {
        ReplicatedScfState {
            iteration,
            rho_in: (0..nnodes).map(|i| (i as f64 * 0.31).sin().abs()).collect(),
            mu: -0.123456789,
            mixer_history: vec![
                (vec![0.5; nnodes], vec![0.01; nnodes]),
                (
                    (0..nnodes).map(|i| i as f64 * 1e-3).collect(),
                    (0..nnodes).map(|i| (i as f64).cos() * 1e-4).collect(),
                ),
            ],
            filter_windows: vec![Some((-1.5, 0.25)), None],
            residual_history: vec![1e-2, 3e-3, 8e-4],
        }
    }

    /// Two ranks write shards; loading reassembles the exact full block and
    /// the exact replicated state, bit for bit.
    #[test]
    fn round_trip_reassembles_bits_exactly() {
        let root = tmp_root("roundtrip");
        let (ndofs, n_states, nnodes) = (10usize, 3usize, 7usize);
        let full: Vec<Matrix<f64>> = (0..2)
            .map(|k| {
                Matrix::from_fn(ndofs, n_states, |i, j| {
                    ((i * 7 + j * 3 + k * 11) as f64 * 0.17).sin()
                })
            })
            .collect();
        let owned0: Vec<u32> = (0..6).collect();
        let owned1: Vec<u32> = (6..10).collect();
        let state = demo_state(4, nnodes);
        for (rank, owned) in [(0usize, &owned0), (1, &owned1)] {
            let local: Vec<Matrix<f64>> = full
                .iter()
                .map(|m| Matrix::from_fn(owned.len(), n_states, |l, j| m.col(j)[owned[l] as usize]))
                .collect();
            write_rank(&root, rank, 2, ndofs, &state, owned, &local).unwrap();
        }
        finalize(&root, 4, 2).unwrap();
        assert_eq!(latest_complete(&root), Some(4));

        let loaded = load::<f64>(&root, 4).unwrap();
        assert_eq!(loaded.nranks_at_write, 2);
        assert_eq!(loaded.state, state);
        for (a, b) in loaded.psi_full.iter().zip(full.iter()) {
            for j in 0..n_states {
                for (x, y) in a.col(j).iter().zip(b.col(j)) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    /// Complex shards round-trip through the interleaved re/im encoding.
    #[test]
    fn complex_round_trip() {
        let root = tmp_root("complex");
        let (ndofs, n_states) = (5usize, 2usize);
        let full = Matrix::<C64>::from_fn(ndofs, n_states, |i, j| {
            C64::new((i as f64 + 0.5) * 0.3, (j as f64 - 0.5) * 0.7)
        });
        let owned: Vec<u32> = (0..5).collect();
        let mut state = demo_state(1, 3);
        state.filter_windows = vec![None];
        write_rank(
            &root,
            0,
            1,
            ndofs,
            &state,
            &owned,
            std::slice::from_ref(&full),
        )
        .unwrap();
        finalize(&root, 1, 2).unwrap();
        let loaded = load::<C64>(&root, 1).unwrap();
        for j in 0..n_states {
            assert_eq!(loaded.psi_full[0].col(j), full.col(j));
        }
        // loading with the wrong scalar kind is rejected
        assert!(load::<f64>(&root, 1).is_err());
    }

    /// A flipped byte fails the checksum; an absent COMPLETE marker makes
    /// the snapshot invisible to latest_complete.
    #[test]
    fn corruption_and_incomplete_snapshots_are_rejected() {
        let root = tmp_root("corrupt");
        let owned: Vec<u32> = (0..4).collect();
        let psi = Matrix::<f64>::from_fn(4, 2, |i, j| (i + 10 * j) as f64);
        let state = demo_state(2, 3);
        write_rank(&root, 0, 1, 4, &state, &owned, &[psi]).unwrap();
        // incomplete: not yet finalized
        assert_eq!(latest_complete(&root), None);
        finalize(&root, 2, 2).unwrap();
        assert_eq!(latest_complete(&root), Some(2));
        // corrupt one byte in the middle of the rank file
        let path = iter_dir(&root, 2).join("rank-0.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = load::<f64>(&root, 2).err().expect("corrupt load must fail");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    /// finalize prunes older snapshots down to `keep_last` complete ones.
    #[test]
    fn finalize_prunes_old_snapshots() {
        let root = tmp_root("prune");
        let owned: Vec<u32> = (0..2).collect();
        let psi = Matrix::<f64>::from_fn(2, 1, |i, _| i as f64);
        for it in [1usize, 3, 5, 7] {
            let state = demo_state(it, 2);
            write_rank(&root, 0, 1, 2, &state, &owned, std::slice::from_ref(&psi)).unwrap();
            finalize(&root, it, 2).unwrap();
        }
        assert_eq!(latest_complete(&root), Some(7));
        // the two newest survive, the older two are gone
        assert!(iter_dir(&root, 7).exists());
        assert!(iter_dir(&root, 5).exists());
        assert!(!iter_dir(&root, 3).exists());
        assert!(!iter_dir(&root, 1).exists());
        // both survivors still load
        assert!(load::<f64>(&root, 5).is_ok());
        assert!(load::<f64>(&root, 7).is_ok());
    }

    /// Two jobs snapshotting under one shared root via [`job_dir`] never
    /// prune each other: job A's `finalize` walks only A's own `iter-*`
    /// entries, so B's COMPLETE snapshots survive A's keep-last-2 pruning
    /// (and vice versa). Without the per-job namespace both jobs would write
    /// into the same directory and each `finalize` would delete the other's
    /// older snapshots.
    #[test]
    fn jobs_under_shared_root_do_not_prune_each_other() {
        let root = tmp_root("jobdir");
        let dir_a = job_dir(&root, 1);
        let dir_b = job_dir(&root, 2);
        assert_ne!(dir_a, dir_b);
        let owned: Vec<u32> = (0..2).collect();
        let psi = Matrix::<f64>::from_fn(2, 1, |i, _| i as f64);

        // job A writes many snapshots, pruning down to its last two
        for it in [1usize, 2, 3, 4] {
            let state = demo_state(it, 2);
            write_rank(&dir_a, 0, 1, 2, &state, &owned, std::slice::from_ref(&psi)).unwrap();
            finalize(&dir_a, it, 2).unwrap();
        }
        // job B, interleaved in time, has exactly one precious snapshot
        let state_b = demo_state(9, 2);
        write_rank(
            &dir_b,
            0,
            1,
            2,
            &state_b,
            &owned,
            std::slice::from_ref(&psi),
        )
        .unwrap();
        finalize(&dir_b, 9, 2).unwrap();
        // ... and A keeps churning afterwards
        for it in [5usize, 6] {
            let state = demo_state(it, 2);
            write_rank(&dir_a, 0, 1, 2, &state, &owned, std::slice::from_ref(&psi)).unwrap();
            finalize(&dir_a, it, 2).unwrap();
        }

        // A pruned its own history as usual ...
        assert_eq!(latest_complete(&dir_a), Some(6));
        assert!(!iter_dir(&dir_a, 4).exists());
        // ... but B's snapshot is untouched and still loads bit-exactly
        assert_eq!(latest_complete(&dir_b), Some(9));
        let loaded = load::<f64>(&dir_b, 9).unwrap();
        assert_eq!(loaded.state, state_b);
    }
}
