//! The restart driver: run a distributed SCF, and when ranks die, resume
//! from the newest complete checkpoint at a reduced rank count.
//!
//! Recovery needs no surviving process state — the snapshot on disk plus the
//! deterministic [`Decomposition`](crate::decomp::Decomposition) derived
//! from the *new* rank count are enough. The reassembled wavefunction shards
//! are restricted to the fresh partition, so the restarted SCF continues
//! from the checkpointed iteration and reconverges to the same free energy
//! (bit-identical at the same rank count, to solver tolerance otherwise).

use crate::relax::{dist_relax, DistRelaxConfig, DistRelaxResult, RelaxError};
use crate::scf::{distributed_scf, DistScfConfig, DistScfResult, ScfError};
use dft_core::scf::KPoint;
use dft_core::system::AtomicSystem;
use dft_core::xc::XcFunctional;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{run_cluster_with, ClusterOptions, CommError, FaultPlan};
use std::sync::Arc;

/// What [`scf_with_recovery`] did to finish the SCF.
pub struct RecoveryReport {
    /// Per-rank results of the *successful* attempt, in rank order.
    pub results: Vec<DistScfResult>,
    /// Cluster launches performed (1 = no failure).
    pub attempts: usize,
    /// Rank count of the first launch.
    pub initial_nranks: usize,
    /// Rank count of the successful launch.
    pub final_nranks: usize,
    /// The first per-rank error observed, if any attempt failed.
    pub first_failure: Option<ScfError>,
}

/// Run the distributed SCF under `opts` (which may carry a fault plan) and,
/// on rank loss, relaunch from the newest complete snapshot in
/// `cfg.checkpoint_dir` with the dead ranks removed. Relaunches are
/// fault-free (a kill rule fires once; replaying it would re-kill the
/// restarted run) and keep the original receive deadline.
///
/// Errors with the first failure when `max_restarts` is exhausted, when the
/// cluster shrinks below one rank, or on checkpoint I/O failure (which a
/// relaunch cannot fix).
#[allow(clippy::too_many_arguments)]
pub fn scf_with_recovery<X: XcFunctional + Sync>(
    nranks: usize,
    opts: &ClusterOptions,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &X,
    cfg: &DistScfConfig,
    kpts: &[KPoint],
    max_restarts: usize,
) -> Result<RecoveryReport, ScfError> {
    assert!(nranks >= 1);
    let mut n = nranks;
    let mut attempts = 0;
    let mut first_failure: Option<ScfError> = None;
    let mut current = ClusterOptions {
        timeout: opts.timeout,
        faults: Arc::clone(&opts.faults),
        // a recovery relaunch replays the same explored schedule: a
        // divergence found under seed S must stay reproducible under S
        schedule: opts.schedule,
    };
    let mut cfg_attempt = cfg.clone();

    loop {
        attempts += 1;
        let (results, _) = run_cluster_with(n, &current, |comm| {
            distributed_scf(comm, space, system, xc, &cfg_attempt, kpts)
        });

        let mut ok = Vec::with_capacity(n);
        let mut dead = 0usize;
        let mut attempt_error: Option<ScfError> = None;
        for r in results {
            match r {
                Ok(res) => ok.push(res),
                Err(e) => {
                    if matches!(
                        e,
                        ScfError::RankLost {
                            cause: CommError::Killed { .. },
                            ..
                        }
                    ) {
                        dead += 1;
                    }
                    if attempt_error.is_none() {
                        attempt_error = Some(e.clone());
                    }
                }
            }
        }

        let Some(err) = attempt_error else {
            return Ok(RecoveryReport {
                results: ok,
                attempts,
                initial_nranks: nranks,
                final_nranks: n,
                first_failure,
            });
        };
        if first_failure.is_none() {
            first_failure = Some(err.clone());
        }
        // a broken snapshot store stays broken across relaunches; a
        // cooperative preemption is a scheduling decision, not a failure —
        // the job scheduler resumes the run itself, so relaunching here
        // would override it
        if matches!(
            err,
            ScfError::Checkpoint { .. } | ScfError::Preempted { .. }
        ) {
            return Err(err);
        }
        // survivors time out without a Killed cause when the dead rank never
        // reports (it is gone, not erroring) — drop at least one rank
        let drop_ranks = dead.max(1);
        if attempts > max_restarts || n <= drop_ranks {
            return Err(err);
        }
        n -= drop_ranks;
        // relaunch fault-free from the newest complete snapshot; the
        // original grid shape cannot tile the reduced rank count, so the
        // relaunch pins the 1D slab layout explicitly (checkpoints reshard
        // across grid shapes, and an ambient DFT_GRID knob must not apply
        // to a shrunk cluster it cannot tile)
        current.faults = Arc::new(FaultPlan::default());
        cfg_attempt.restart = true;
        cfg_attempt.grid = Some(crate::grid::GridShape::slab(n));
    }
}

/// What [`relax_with_recovery`] did to finish the relaxation.
pub struct RelaxRecoveryReport {
    /// Per-rank results of the *successful* attempt, in rank order.
    pub results: Vec<DistRelaxResult>,
    /// Cluster launches performed (1 = no failure).
    pub attempts: usize,
    /// Rank count of the first launch.
    pub initial_nranks: usize,
    /// Rank count of the successful launch.
    pub final_nranks: usize,
    /// The first per-rank error observed, if any attempt failed.
    pub first_failure: Option<RelaxError>,
}

/// [`scf_with_recovery`]'s sibling for the distributed relaxation driver:
/// run [`dist_relax`] under `opts`, and on rank loss relaunch with the
/// dead ranks removed. The relaunch resumes the *geometry* loop from the
/// persisted relax state and the interrupted step's SCF from its newest
/// complete snapshot — so a fault mid-trajectory repeats at most one
/// step's un-checkpointed SCF iterations, not the whole relaxation.
///
/// Preemption, checkpoint-store, and force-evaluation failures pass
/// through untouched: none of them is fixed by relaunching.
#[allow(clippy::too_many_arguments)]
pub fn relax_with_recovery<X: XcFunctional + Sync>(
    nranks: usize,
    opts: &ClusterOptions,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &X,
    cfg: &DistScfConfig,
    relax_cfg: &DistRelaxConfig,
    kpts: &[KPoint],
    max_restarts: usize,
) -> Result<RelaxRecoveryReport, RelaxError> {
    assert!(nranks >= 1);
    let mut n = nranks;
    let mut attempts = 0;
    let mut first_failure: Option<RelaxError> = None;
    let mut current = ClusterOptions {
        timeout: opts.timeout,
        faults: Arc::clone(&opts.faults),
        // a recovery relaunch replays the same explored schedule: a
        // divergence found under seed S must stay reproducible under S
        schedule: opts.schedule,
    };
    let mut cfg_attempt = cfg.clone();

    loop {
        attempts += 1;
        let (results, _) = run_cluster_with(n, &current, |comm| {
            dist_relax(comm, space, system, xc, &cfg_attempt, relax_cfg, kpts)
        });

        let mut ok = Vec::with_capacity(n);
        let mut dead = 0usize;
        let mut attempt_error: Option<RelaxError> = None;
        for r in results {
            match r {
                Ok(res) => ok.push(res),
                Err(e) => {
                    if matches!(
                        e,
                        RelaxError::Scf(ScfError::RankLost {
                            cause: CommError::Killed { .. },
                            ..
                        }) | RelaxError::Comm(CommError::Killed { .. })
                    ) {
                        dead += 1;
                    }
                    if attempt_error.is_none() {
                        attempt_error = Some(e.clone());
                    }
                }
            }
        }

        let Some(err) = attempt_error else {
            return Ok(RelaxRecoveryReport {
                results: ok,
                attempts,
                initial_nranks: nranks,
                final_nranks: n,
                first_failure,
            });
        };
        if first_failure.is_none() {
            first_failure = Some(err.clone());
        }
        // preemption is a scheduling decision the caller resumes itself;
        // a broken snapshot store or a diverged force Poisson solve stays
        // broken across relaunches
        if matches!(
            err,
            RelaxError::Scf(ScfError::Checkpoint { .. } | ScfError::Preempted { .. })
                | RelaxError::Force(_)
        ) {
            return Err(err);
        }
        let drop_ranks = dead.max(1);
        if attempts > max_restarts || n <= drop_ranks {
            return Err(err);
        }
        n -= drop_ranks;
        // fault-free relaunch on the 1D slab (as in `scf_with_recovery`);
        // `restart` re-enters both the relax state and the interrupted
        // step's SCF snapshots
        current.faults = Arc::new(FaultPlan::default());
        cfg_attempt.restart = true;
        cfg_attempt.grid = Some(crate::grid::GridShape::slab(n));
    }
}
