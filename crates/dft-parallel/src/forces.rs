//! Distributed Hellmann-Feynman force assembly.
//!
//! The force evaluation splits the same way the SCF does: the
//! electrostatic potential `phi` of `rho_ion - rho_e` is a replicated
//! nodal field (every rank recomputes it identically from the replicated
//! density — no communication, same bytes everywhere), while the
//! O(atoms x nodes) quadrature loop — the serial bottleneck — is
//! partitioned by the decomposition's owned nodes. Each rank sums
//! [`electrostatic_force_partial`] over its owned nodes (masked to the
//! (band 0, k-group 0) replica of each domain slot so grid layouts count
//! every node exactly once) plus a round-robin shard of the ion-ion image
//! sum, and one fixed-rank-order `allreduce_sum_f64` reassembles the
//! serial result bit-for-bit on every rank: the collective gathers to
//! rank 0 and accumulates in ascending rank order regardless of arrival,
//! so repeated runs are bit-identical (L004).

use crate::grid::{GridShape, ProcessGrid};
use crate::operator::DistSpace;
use dft_core::forces::{
    electrostatic_force_partial, force_poisson, ion_ion_force_partial, ForceError,
};
use dft_core::system::AtomicSystem;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{CommError, ThreadComm, WirePrecision};
use std::time::Instant;

/// Why a distributed force evaluation failed.
#[derive(Clone, Debug)]
pub enum DistForceError {
    /// The (replicated) force Poisson solve diverged — identically on
    /// every rank, so all ranks return this error together.
    Force(ForceError),
    /// The force reduction lost a peer.
    Comm(CommError),
}

impl std::fmt::Display for DistForceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistForceError::Force(e) => write!(f, "{e}"),
            DistForceError::Comm(e) => write!(f, "force reduction failed: {e}"),
        }
    }
}

impl std::error::Error for DistForceError {}

impl From<ForceError> for DistForceError {
    fn from(e: ForceError) -> Self {
        DistForceError::Force(e)
    }
}

/// Per-rank wall-clock breakdown of one distributed force evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForceAssemblyProfile {
    /// Replicated Poisson solve for the force potential (identical work
    /// on every rank by design — not part of the distributed speedup).
    pub poisson_s: f64,
    /// This rank's partial assembly: owned-node electrostatic quadrature
    /// plus the ion-ion image shard. This is the term the decomposition
    /// actually divides; the cluster's critical path is its max over
    /// ranks.
    pub assembly_s: f64,
    /// The force allreduce (includes wait on slower ranks).
    pub reduce_s: f64,
}

/// Distributed Hellmann-Feynman forces for a converged replicated density
/// `rho_e` (full nodal field, identical on every rank — e.g.
/// `DistScfResult::density`). Call from every rank of a cluster with
/// identical arguments; returns the full per-atom force table, replicated
/// and bit-identical across ranks and across repeated runs. `grid`
/// selects the decomposition (must match the rank count); `None` uses the
/// 1D slab.
pub fn distributed_forces(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    rho_e: &[f64],
    grid: Option<GridShape>,
) -> Result<Vec<[f64; 3]>, DistForceError> {
    distributed_forces_profiled(comm, space, system, rho_e, grid).map(|(f, _)| f)
}

/// [`distributed_forces`] with a per-rank timing breakdown (the
/// force-assembly benchmark's measurement hook).
pub fn distributed_forces_profiled(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    rho_e: &[f64],
    grid: Option<GridShape>,
) -> Result<(Vec<[f64; 3]>, ForceAssemblyProfile), DistForceError> {
    let (rank, nranks) = (comm.rank(), comm.size());
    let shape = grid
        .or_else(GridShape::from_env)
        .unwrap_or_else(|| GridShape::slab(nranks));
    let pgrid = ProcessGrid::new(shape, rank, nranks);
    let dist = DistSpace::new_grid(space, &pgrid);
    let dec = &dist.dec;
    let mut prof = ForceAssemblyProfile::default();

    // replicated potential: identical recomputation (and identical
    // failure) on every rank, so an early Err cannot desynchronize the
    // cluster — nobody reaches the allreduce
    let t0 = Instant::now();
    let phi = force_poisson(space, system, rho_e)?;
    prof.poisson_s = t0.elapsed().as_secs_f64();

    // owned-node electrostatic partial + ion-ion image shard. The node
    // mask keeps exactly the (band 0, k-group 0) replica of each owned
    // node; the ion shard round-robins atoms over *global* ranks, so the
    // two partitions each tile their serial sum once.
    let t1 = Instant::now();
    let owns = pgrid.owns_replicated_fields();
    let mask: Vec<bool> = dec.owned_node.iter().map(|&o| o && owns).collect();
    let es = electrostatic_force_partial(space, system, &phi, Some(&mask));
    let ii = ion_ion_force_partial(space, system, rank, nranks);
    let n_at = system.atoms.len();
    let mut buf = vec![0.0f64; 3 * n_at];
    for a in 0..n_at {
        for k in 0..3 {
            buf[3 * a + k] = es[a][k] + ii[a][k];
        }
    }
    prof.assembly_s = t1.elapsed().as_secs_f64();

    // one deterministic reduction: gather-to-root, ascending-rank FP64
    // accumulation, broadcast — replicated and repeatable bit-for-bit
    let t2 = Instant::now();
    comm.allreduce_sum_f64(&mut buf, WirePrecision::Fp64)
        .map_err(DistForceError::Comm)?;
    prof.reduce_s = t2.elapsed().as_secs_f64();

    let mut forces = vec![[0.0f64; 3]; n_at];
    for a in 0..n_at {
        for k in 0..3 {
            forces[a][k] = buf[3 * a + k];
        }
    }
    Ok((forces, prof))
}
