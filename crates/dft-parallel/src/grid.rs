//! The 3-axis process grid: **domain × band × k-point group**.
//!
//! The paper's strong-scaling runs (Sec. 5.4, 6.3) split the Kohn–Sham
//! problem along three independent axes. This module maps a flat rank id
//! onto that grid and derives the communicator sub-groups each axis
//! reduces over:
//!
//! - **domain** (fastest-varying): cell-slab decomposition of the FE mesh
//!   (PR 3). Ghost exchange and domain reductions stay inside a *domain
//!   row* — the ranks sharing this rank's band column and k-group.
//! - **band**: contiguous column blocks of the wavefunction matrix. Each
//!   band rank filters and projects only its own columns; full-column
//!   matrices are reassembled by an allgather along the *band group*.
//! - **k-point group** (slowest-varying): whole k-points are trivially
//!   parallel; fields (density, potentials) are replicated per group and
//!   combined by a cross-group sum.
//!
//! `grid = None` in the SCF config (the default) preserves the PR-3 1D
//! slab path bit-for-bit: every rank is its own band column and k-group.

use std::fmt;

/// The extents of the process grid. `n_dom * n_band * n_kgrp` must equal
/// the total rank count of the cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Ranks along the domain (cell-slab) axis.
    pub n_dom: usize,
    /// Ranks along the band (wavefunction-column) axis.
    pub n_band: usize,
    /// Number of k-point groups.
    pub n_kgrp: usize,
}

impl GridShape {
    /// A shape with explicit extents (each must be >= 1).
    pub fn new(n_dom: usize, n_band: usize, n_kgrp: usize) -> Self {
        assert!(n_dom >= 1 && n_band >= 1 && n_kgrp >= 1, "empty grid axis");
        Self {
            n_dom,
            n_band,
            n_kgrp,
        }
    }

    /// The pure-domain shape PR 3 used: every rank is a slab.
    pub fn slab(nranks: usize) -> Self {
        Self::new(nranks, 1, 1)
    }

    /// Total rank count the shape occupies.
    pub fn nranks(&self) -> usize {
        self.n_dom * self.n_band * self.n_kgrp
    }

    /// Parse a `"DOMxBANDxK"` spec, e.g. `"4x2x1"`; the k extent may be
    /// omitted (`"4x2"` means one k-group). This is the format of the
    /// `DFT_GRID` environment knob.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.trim().split('x').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!("grid spec '{s}' is not DOMxBAND or DOMxBANDxK"));
        }
        let mut dims = [1usize; 3];
        for (i, p) in parts.iter().enumerate() {
            dims[i] = p
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("grid spec '{s}': '{p}' is not a positive integer"))?;
            if dims[i] == 0 {
                return Err(format!("grid spec '{s}': axis extent must be >= 1"));
            }
        }
        Ok(Self::new(dims[0], dims[1], dims[2]))
    }

    /// The `DFT_GRID` environment knob, if set and non-empty. A malformed
    /// spec aborts loudly — silently falling back to the slab layout would
    /// make a typo look like a performance regression.
    pub fn from_env() -> Option<Self> {
        let s = std::env::var("DFT_GRID").ok()?;
        if s.trim().is_empty() {
            return None;
        }
        match Self::parse(&s) {
            Ok(g) => Some(g),
            // dftlint:allow(L001, reason="user-facing env knob read once at startup; a typo must abort, not be ignored")
            Err(e) => panic!("DFT_GRID: {e}"),
        }
    }
}

impl fmt::Display for GridShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.n_dom, self.n_band, self.n_kgrp)
    }
}

/// One rank's position on the grid plus the communicator sub-groups its
/// collectives run over. Rank layout is dom-fastest:
/// `rank = (kgrp * n_band + band) * n_dom + dom`.
#[derive(Debug, Clone)]
pub struct ProcessGrid {
    /// The grid extents.
    pub shape: GridShape,
    /// This rank's flat id.
    pub rank: usize,
    /// Domain-axis coordinate (which cell slab).
    pub dom: usize,
    /// Band-axis coordinate (which wavefunction column block).
    pub band: usize,
    /// K-group coordinate (which set of k-points).
    pub kgrp: usize,
    /// Ranks sharing this band column and k-group, in domain order —
    /// the sub-group of ghost exchange and domain reductions. Indexed by
    /// dom coordinate: `dom_group[d]` is the global rank at domain slot
    /// `d` of this rank's grid row.
    pub dom_group: Vec<usize>,
    /// Ranks sharing this domain slab and k-group, in band order — the
    /// sub-group band-axis assemblies gather over.
    pub band_group: Vec<usize>,
    /// All ranks of this k-group, in rank order (root first).
    pub kgrp_group: Vec<usize>,
    /// One representative rank (dom 0, band 0) per k-group, in k-group
    /// order — the sub-group that exchanges per-k eigenvalues and filter
    /// windows across k-groups.
    pub k_roots: Vec<usize>,
}

impl ProcessGrid {
    /// Place `rank` of a `nranks`-rank cluster on `shape`. Panics if the
    /// shape does not tile the cluster exactly.
    pub fn new(shape: GridShape, rank: usize, nranks: usize) -> Self {
        assert_eq!(
            shape.nranks(),
            nranks,
            "grid shape {shape} does not tile {nranks} ranks"
        );
        assert!(rank < nranks);
        let dom = rank % shape.n_dom;
        let band = (rank / shape.n_dom) % shape.n_band;
        let kgrp = rank / (shape.n_dom * shape.n_band);
        let plane = shape.n_dom * shape.n_band;
        let dom_group = (0..shape.n_dom)
            .map(|d| kgrp * plane + band * shape.n_dom + d)
            .collect();
        let band_group = (0..shape.n_band)
            .map(|b| kgrp * plane + b * shape.n_dom + dom)
            .collect();
        let kgrp_group = (kgrp * plane..(kgrp + 1) * plane).collect();
        let k_roots = (0..shape.n_kgrp).map(|g| g * plane).collect();
        Self {
            shape,
            rank,
            dom,
            band,
            kgrp,
            dom_group,
            band_group,
            kgrp_group,
            k_roots,
        }
    }

    /// The contiguous column block `[j0, j1)` of an `n_states`-column
    /// wavefunction matrix owned by band slot `b` (same balanced split as
    /// the cell slabs: low slots get the remainder).
    pub fn band_cols_of(n_states: usize, n_band: usize, b: usize) -> (usize, usize) {
        let base = n_states / n_band;
        let extra = n_states % n_band;
        let j0 = b * base + b.min(extra);
        let j1 = j0 + base + usize::from(b < extra);
        (j0, j1)
    }

    /// This rank's band column block of an `n_states`-column matrix.
    pub fn my_band_cols(&self, n_states: usize) -> (usize, usize) {
        Self::band_cols_of(n_states, self.shape.n_band, self.band)
    }

    /// The contiguous k-point range `[k0, k1)` handled by k-group `g` out
    /// of `nk` total k-points.
    pub fn kpoints_of(nk: usize, n_kgrp: usize, g: usize) -> (usize, usize) {
        let base = nk / n_kgrp;
        let extra = nk % n_kgrp;
        let k0 = g * base + g.min(extra);
        let k1 = k0 + base + usize::from(g < extra);
        (k0, k1)
    }

    /// This rank's k-point range.
    pub fn my_kpoints(&self, nk: usize) -> (usize, usize) {
        Self::kpoints_of(nk, self.shape.n_kgrp, self.kgrp)
    }

    /// Whether this rank is the (band 0, k-group 0) representative of its
    /// domain slab — the one that contributes replicated-field data to
    /// global sums so each value is counted exactly once.
    pub fn owns_replicated_fields(&self) -> bool {
        self.band == 0 && self.kgrp == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_two_and_three_axis_specs() {
        assert_eq!(GridShape::parse("4x2").unwrap(), GridShape::new(4, 2, 1));
        assert_eq!(GridShape::parse("2x2x2").unwrap(), GridShape::new(2, 2, 2));
        assert!(GridShape::parse("4").is_err());
        assert!(GridShape::parse("4x0").is_err());
        assert!(GridShape::parse("axb").is_err());
    }

    #[test]
    fn rank_layout_round_trips_and_groups_are_consistent() {
        let shape = GridShape::new(2, 2, 2);
        for rank in 0..8 {
            let g = ProcessGrid::new(shape, rank, 8);
            assert_eq!((g.kgrp * 2 + g.band) * 2 + g.dom, rank);
            assert_eq!(g.dom_group.len(), 2);
            assert_eq!(g.band_group.len(), 2);
            assert_eq!(g.dom_group[g.dom], rank);
            assert_eq!(g.band_group[g.band], rank);
            assert!(g.kgrp_group.contains(&rank));
            // groups along one axis agree across their members
            for &peer in &g.dom_group {
                let pg = ProcessGrid::new(shape, peer, 8);
                assert_eq!(pg.dom_group, g.dom_group);
            }
        }
        // k roots are the dom-0/band-0 rank of each group
        let g = ProcessGrid::new(shape, 5, 8);
        assert_eq!(g.k_roots, vec![0, 4]);
    }

    #[test]
    fn slab_shape_degenerates_to_identity_groups() {
        let g = ProcessGrid::new(GridShape::slab(4), 2, 4);
        assert_eq!(g.dom, 2);
        assert_eq!(g.band, 0);
        assert_eq!(g.kgrp, 0);
        assert_eq!(g.dom_group, vec![0, 1, 2, 3]);
        assert_eq!(g.band_group, vec![2]);
        assert_eq!(g.my_band_cols(7), (0, 7));
        assert_eq!(g.my_kpoints(3), (0, 3));
        assert!(g.owns_replicated_fields());
    }

    #[test]
    fn band_and_kpoint_splits_are_contiguous_and_exhaustive() {
        for (n, parts) in [(7usize, 2usize), (8, 4), (3, 3), (5, 4)] {
            let mut next = 0;
            for b in 0..parts {
                let (j0, j1) = ProcessGrid::band_cols_of(n, parts, b);
                assert_eq!(j0, next);
                assert!(j1 >= j0);
                next = j1;
            }
            assert_eq!(next, n);
        }
        let (k0, k1) = ProcessGrid::kpoints_of(4, 2, 1);
        assert_eq!((k0, k1), (2, 4));
    }
}
