//! Distributed stiffness / Hamiltonian application with overlapped ghost
//! exchange.
//!
//! One apply runs the paper's boundary/interior split (Sec. 5.4.1):
//!
//! 1. **post** — pack this rank's owned boundary rows and `isend` them to
//!    every ghosting peer (nonblocking: the channel transport buffers);
//! 2. **interior** — sum-factorized cell kernels over cells whose DoFs are
//!    all owned, while the boundary messages are in flight;
//! 3. **harvest** — `try_recv`-poll the ghost payloads, fill the extended
//!    vector, and run the boundary cells;
//! 4. **fold back** — ghost rows of the result hold partial sums belonging
//!    to other ranks: `isend` them to their owners and accumulate the
//!    incoming partials into owned rows *in ascending peer order*, so the
//!    result is independent of message arrival order (deterministic runs).
//!
//! Wire precision is selectable per operator: the distributed SCF keeps an
//! FP64 Hamiltonian for Rayleigh-Ritz and an FP32-wire twin for the
//! Chebyshev filter, the paper's "FP32 boundary communication, FP64 math"
//! scheme (Sec. 5.4.2).

use crate::decomp::Decomposition;
use crate::grid::ProcessGrid;
use dft_core::chebyshev::{CfDriver, CfScratch};
use dft_core::hamiltonian::HamOperator;
use dft_fem::space::{phase_products, FeSpace};
use dft_hpc::comm::{wire_tag_band, CommError, ThreadComm, WirePrecision};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar, C64};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

/// The per-rank communicator behind a [`Mutex`], so operators that must be
/// [`Sync`] (the [`LinearOperator`] supertrait bound) can share it. Locks
/// are uncontended — each rank is one thread — so this costs an atomic per
/// exchange, not a wait.
pub struct SharedComm<'a>(pub Mutex<&'a mut ThreadComm>);

impl<'a> SharedComm<'a> {
    /// Wrap a rank's communicator for use by distributed operators.
    pub fn new(comm: &'a mut ThreadComm) -> Self {
        Self(Mutex::new(comm))
    }

    /// Run `f` with exclusive access to the communicator.
    pub fn with<R>(&self, f: impl FnOnce(&mut ThreadComm) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// The failure that poisoned the underlying communicator, if any.
    pub fn failure(&self) -> Option<CommError> {
        self.with(|c| c.failure())
    }
}

/// The wire-tag band of the ghost exchange (forward + reverse legs, both
/// step parities, both precision framings) — for
/// [`FaultPlan`](dft_hpc::comm::FaultPlan) rules that kill a rank
/// mid-Hamiltonian-apply.
pub fn ghost_tag_band() -> (u64, u64) {
    (wire_tag_band(TAG_FWD).0, wire_tag_band(TAG_FWD2).1)
}

/// Scalars that can cross the wire as `f64` components: `f64` is itself,
/// [`C64`] interleaves `re, im`. (FP32 demotion happens a layer below, in
/// [`ThreadComm::send_f64`].)
pub trait WireScalar: Scalar {
    /// `f64` components per scalar.
    const COMPONENTS: usize;
    /// Append the components of `v` to `buf`.
    fn pack_into(v: Self, buf: &mut Vec<f64>);
    /// Read the scalar at component offset `i * COMPONENTS`.
    fn unpack_at(buf: &[f64], i: usize) -> Self;
}

impl WireScalar for f64 {
    const COMPONENTS: usize = 1;
    #[inline]
    fn pack_into(v: Self, buf: &mut Vec<f64>) {
        buf.push(v);
    }
    #[inline]
    fn unpack_at(buf: &[f64], i: usize) -> Self {
        buf[i]
    }
}

impl WireScalar for C64 {
    const COMPONENTS: usize = 2;
    #[inline]
    fn pack_into(v: Self, buf: &mut Vec<f64>) {
        buf.push(v.re);
        buf.push(v.im);
    }
    #[inline]
    fn unpack_at(buf: &[f64], i: usize) -> Self {
        C64::new(buf[2 * i], buf[2 * i + 1])
    }
}

/// Ghost-exchange message tags, in a band far from the collectives' tags.
/// `TAG_FWD2` is the odd-step forward tag of the cross-iteration
/// double-buffered ghost region: the pipelined filter posts degree step
/// `k + 1`'s forward exchange while step `k`'s buffers may still be live,
/// so consecutive steps alternate between the two forward tags.
const TAG_FWD: u64 = 1 << 55;
const TAG_REV: u64 = (1 << 55) + 1;
const TAG_FWD2: u64 = (1 << 55) + 2;

/// The forward ghost tag of Chebyshev degree-step parity `p`.
#[inline]
const fn fwd_tag(p: usize) -> u64 {
    if p.is_multiple_of(2) {
        TAG_FWD
    } else {
        TAG_FWD2
    }
}

/// Poll `try_recv_f64` round-robin over `peers` until every payload has
/// arrived; payloads are returned in the *list* order (not arrival order),
/// which is what keeps downstream accumulation deterministic. The poll runs
/// against the communicator's receive deadline: a peer that never delivers
/// poisons the communicator with [`CommError::Timeout`] instead of spinning
/// forever.
fn harvest(
    comm: &SharedComm<'_>,
    peers: Vec<usize>,
    tag: u64,
    wire: WirePrecision,
) -> Result<Vec<Vec<f64>>, CommError> {
    let mut got: Vec<Option<Vec<f64>>> = vec![None; peers.len()];
    let mut remaining = peers.len();
    let t0 = Instant::now();
    let deadline = t0 + comm.with(|c| c.timeout());
    while remaining > 0 {
        comm.with(|c| -> Result<(), CommError> {
            for (slot, &p) in got.iter_mut().zip(peers.iter()) {
                if slot.is_none() {
                    if let Some(buf) = c.try_recv_f64(p, tag, wire)? {
                        *slot = Some(buf);
                        remaining -= 1;
                    }
                }
            }
            Ok(())
        })?;
        if remaining > 0 {
            if Instant::now() >= deadline {
                let missing = peers
                    .iter()
                    .zip(got.iter())
                    .find(|(_, s)| s.is_none())
                    .map_or(0, |(&p, _)| p);
                let band = wire_tag_band(tag).0 + u64::from(wire == WirePrecision::Fp32);
                let e = CommError::Timeout {
                    src: missing,
                    tag: band,
                };
                comm.with(|c| c.fail(e));
                return Err(e);
            }
            std::thread::yield_now();
        }
    }
    // attribute the whole poll to ghost wait: when the payloads were
    // already in (overlap succeeded) the first pass drains them and the
    // recorded wait is microseconds; exposed waits dominate otherwise
    comm.with(|c| {
        c.stats()
            .ghost_wait_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed)
    });
    // dftlint:allow(L001, reason="the wait loop above returns early unless every slot was filled")
    Ok(got.into_iter().map(|s| s.unwrap()).collect())
}

/// A partitioned FE space: one rank's slab plus its exchange machinery.
pub struct DistSpace<'a> {
    /// The (replicated) global FE space.
    pub space: &'a FeSpace,
    /// This rank's decomposition (over the domain axis).
    pub dec: Decomposition,
    /// Global rank of each domain slot of this rank's grid row — the
    /// decomposition's peer indices are *domain* coordinates, which only
    /// equal global ranks on the 1D slab layout. Ghost exchange always
    /// stays inside this list (same band column, same k-group).
    pub rank_of_dom: Vec<usize>,
}

impl<'a> DistSpace<'a> {
    /// Build rank `rank` of `nranks`'s view of `space` (1D slab layout:
    /// every rank is its own domain slot).
    pub fn new(space: &'a FeSpace, rank: usize, nranks: usize) -> Self {
        Self {
            space,
            dec: Decomposition::new(space, rank, nranks),
            rank_of_dom: (0..nranks).collect(),
        }
    }

    /// Build this rank's slab view under a process grid: the mesh is
    /// decomposed over the grid's domain axis only, and ghost-exchange
    /// peers are the other domain slots of this rank's grid row.
    pub fn new_grid(space: &'a FeSpace, grid: &ProcessGrid) -> Self {
        Self {
            space,
            dec: Decomposition::new(space, grid.dom, grid.shape.n_dom),
            rank_of_dom: grid.dom_group.clone(),
        }
    }

    /// Distributed `Y = K X` on owned DoF rows (the distributed
    /// counterpart of [`FeSpace::apply_stiffness`]): `x` and `y` are
    /// `n_owned x ncols`. Fails (and poisons the communicator) if a ghost
    /// exchange times out or a peer is lost.
    pub fn apply_stiffness<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        self.apply_cells(comm, x, y, phases, None, wire)
    }

    /// The shared kernel: optional fused per-row `M^{-1/2}` input scaling
    /// (indexed by *global* DoF, as in the serial fused path).
    fn apply_cells<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        row_scale: Option<&[f64]>,
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        self.post_ghost_sends(comm, x, TAG_FWD, wire)?;
        self.apply_cells_posted(comm, x, y, phases, row_scale, wire, TAG_FWD)
    }

    /// Step 1 of the apply, callable on its own: pack the owned boundary
    /// rows of `x` and `isend` them (raw, unscaled — the receiver owns the
    /// same global mass diagonal and scales locally) to every ghosting
    /// peer under `tag`. The pipelined Chebyshev driver posts the *next*
    /// degree step's exchange this way while the current step's interior
    /// update is still running.
    fn post_ghost_sends<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        tag: u64,
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        let dec = &self.dec;
        let nc = x.ncols();
        comm.with(|c| -> Result<(), CommError> {
            for (peer, idxs) in &dec.send_to {
                let mut buf = Vec::with_capacity(idxs.len() * nc * T::COMPONENTS);
                for j in 0..nc {
                    let col = x.col(j);
                    for &l in idxs {
                        T::pack_into(col[l as usize], &mut buf);
                    }
                }
                c.isend_f64(self.rank_of_dom[*peer], tag, &buf, wire)?;
            }
            Ok(())
        })
    }

    /// Steps 2-4 of the apply: the forward exchange of `x` must already be
    /// in flight under `fwd` ([`Self::post_ghost_sends`]).
    #[allow(clippy::too_many_arguments)]
    fn apply_cells_posted<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        row_scale: Option<&[f64]>,
        wire: WirePrecision,
        fwd: u64,
    ) -> Result<(), CommError> {
        let dec = &self.dec;
        let (n_owned, n_ext) = (dec.n_owned(), dec.n_ext());
        let nc = x.ncols();
        assert_eq!(x.nrows(), n_owned);
        assert_eq!(y.shape(), (n_owned, nc));

        // extended input: owned rows (scaled) now, ghosts after harvest
        let mut x_ext = Matrix::<T>::zeros(n_ext, nc);
        for j in 0..nc {
            let src = x.col(j);
            let dst = &mut x_ext.col_mut(j)[..n_owned];
            dst.copy_from_slice(src);
            if let Some(s) = row_scale {
                for (l, v) in dst.iter_mut().enumerate() {
                    *v = v.scale(T::Re::from_f64(s[dec.owned[l] as usize]));
                }
            }
        }
        let mut y_ext = Matrix::<T>::zeros(n_ext, nc);

        // 2. interior cells while boundary payloads are in flight
        self.run_cells(&dec.interior_cells, &x_ext, &mut y_ext, phases);

        // 3. harvest ghosts, then the boundary cells
        let fwd_peers = dec
            .recv_from
            .iter()
            .map(|(p, _)| self.rank_of_dom[*p])
            .collect();
        let bufs = harvest(comm, fwd_peers, fwd, wire)?;
        for ((_, idxs), buf) in dec.recv_from.iter().zip(bufs.iter()) {
            assert_eq!(buf.len(), idxs.len() * nc * T::COMPONENTS);
            for j in 0..nc {
                let col = x_ext.col_mut(j);
                for (k, &l) in idxs.iter().enumerate() {
                    let mut v = T::unpack_at(buf, j * idxs.len() + k);
                    if let Some(s) = row_scale {
                        let g = dec.ghosts[l as usize - n_owned] as usize;
                        v = v.scale(T::Re::from_f64(s[g]));
                    }
                    col[l as usize] = v;
                }
            }
        }
        self.run_cells(&dec.boundary_cells, &x_ext, &mut y_ext, phases);

        // 4. fold ghost partial sums back to their owners; accumulate the
        //    incoming partials in ascending peer order (deterministic)
        comm.with(|c| -> Result<(), CommError> {
            for (peer, idxs) in &dec.recv_from {
                let mut buf = Vec::with_capacity(idxs.len() * nc * T::COMPONENTS);
                for j in 0..nc {
                    let col = y_ext.col(j);
                    for &l in idxs {
                        T::pack_into(col[l as usize], &mut buf);
                    }
                }
                c.isend_f64(self.rank_of_dom[*peer], TAG_REV, &buf, wire)?;
            }
            Ok(())
        })?;
        let rev_peers = dec
            .send_to
            .iter()
            .map(|(p, _)| self.rank_of_dom[*p])
            .collect();
        let bufs = harvest(comm, rev_peers, TAG_REV, wire)?;
        for ((_, idxs), buf) in dec.send_to.iter().zip(bufs.iter()) {
            assert_eq!(buf.len(), idxs.len() * nc * T::COMPONENTS);
            for j in 0..nc {
                let col = y_ext.col_mut(j);
                for (k, &l) in idxs.iter().enumerate() {
                    col[l as usize] += T::unpack_at(buf, j * idxs.len() + k);
                }
            }
        }
        for j in 0..nc {
            y.col_mut(j).copy_from_slice(&y_ext.col(j)[..n_owned]);
        }
        Ok(())
    }

    /// Gather-kernel-scatter over the given slab-local cells, column-
    /// parallel (columns are independent, so the rayon split cannot change
    /// any accumulation order).
    fn run_cells<T: Scalar>(
        &self,
        cells: &[u32],
        x_ext: &Matrix<T>,
        y_ext: &mut Matrix<T>,
        phases: [T; 3],
    ) {
        use rayon::prelude::*;
        let space = self.space;
        let dec = &self.dec;
        let nloc = space.nloc();
        let n_ext = dec.n_ext();
        if n_ext == 0 {
            // empty-owned rank (nranks > ncells): nothing to gather or
            // scatter, and par_chunks_mut(0) would panic
            return;
        }
        let gather_tab = phase_products(phases, false);
        let scatter_tab = phase_products(phases, true);
        y_ext
            .as_mut_slice()
            .par_chunks_mut(n_ext)
            .zip(x_ext.as_slice().par_chunks(n_ext))
            .for_each(|(ycol, xcol)| {
                let mut x_loc = vec![T::ZERO; nloc];
                let mut y_loc = vec![T::ZERO; nloc];
                for &lc in cells {
                    let ci = dec.range.start + lc as usize;
                    let tab = &dec.cell_dof_local[lc as usize * nloc..(lc as usize + 1) * nloc];
                    let wraps = space.cell_wraps(ci);
                    for l in 0..nloc {
                        let d = tab[l];
                        let mut v = if d >= 0 { xcol[d as usize] } else { T::ZERO };
                        if wraps[l] != 0 {
                            v *= gather_tab[wraps[l] as usize];
                        }
                        x_loc[l] = v;
                    }
                    y_loc.fill(T::ZERO);
                    space.cell_stiffness_apply(space.cells()[ci].h, &x_loc, &mut y_loc);
                    for l in 0..nloc {
                        let d = tab[l];
                        if d >= 0 {
                            let mut v = y_loc[l];
                            if wraps[l] != 0 {
                                v *= scatter_tab[wraps[l] as usize];
                            }
                            ycol[d as usize] += v;
                        }
                    }
                }
            });
    }
}

/// The distributed Kohn-Sham Hamiltonian: the owner of this rank's owned
/// DoF rows of `Hhat = 1/2 M^{-1/2} K M^{-1/2} + diag(v_eff)`.
pub struct DistHamiltonian<'a, 'c, T: Scalar> {
    dist: &'a DistSpace<'a>,
    comm: &'a SharedComm<'c>,
    /// Effective potential at owned DoFs.
    v_eff_owned: Vec<f64>,
    /// Bloch phases per axis.
    pub phases: [T; 3],
    wire: WirePrecision,
}

impl<'a, 'c, T: WireScalar> DistHamiltonian<'a, 'c, T> {
    /// Build from the replicated full nodal effective potential.
    pub fn new(
        dist: &'a DistSpace<'a>,
        comm: &'a SharedComm<'c>,
        v_eff_nodes: &[f64],
        phases: [T; 3],
        wire: WirePrecision,
    ) -> Self {
        assert_eq!(v_eff_nodes.len(), dist.space.nnodes());
        let v_eff_owned = dist
            .dec
            .owned
            .iter()
            .map(|&d| v_eff_nodes[dist.space.node_of_dof(d as usize)])
            .collect();
        Self {
            dist,
            comm,
            v_eff_owned,
            phases,
            wire,
        }
    }

    /// Post the forward ghost exchange of `x` under `tag` without running
    /// any compute — the pipelined filter's look-ahead leg.
    fn post_sends(&self, x: &Matrix<T>, tag: u64) -> Result<(), CommError> {
        self.dist.post_ghost_sends(self.comm, x, tag, self.wire)
    }

    /// One Hamiltonian apply whose forward exchange is already in flight
    /// under `fwd`: cell kernels plus the `1/2 M^{-1/2} · + v_eff` output
    /// transform of [`LinearOperator::apply`].
    fn apply_posted(&self, x: &Matrix<T>, y: &mut Matrix<T>, fwd: u64) -> Result<(), CommError> {
        let dec = &self.dist.dec;
        let s = self.dist.space.inv_sqrt_mass();
        self.dist
            .apply_cells_posted(self.comm, x, y, self.phases, Some(s), self.wire, fwd)?;
        // y = 1/2 M^{-1/2} y + v x
        for j in 0..y.ncols() {
            let xcol = x.col(j);
            let ycol = y.col_mut(j);
            for (l, (yv, &xv)) in ycol.iter_mut().zip(xcol.iter()).enumerate() {
                let si = s[dec.owned[l] as usize];
                *yv = yv.scale(T::Re::from_f64(0.5 * si))
                    + xv.scale(T::Re::from_f64(self.v_eff_owned[l]));
            }
        }
        Ok(())
    }
}

impl<'a, 'c, T: WireScalar> LinearOperator<T> for DistHamiltonian<'a, 'c, T> {
    fn dim(&self) -> usize {
        self.dist.dec.n_owned()
    }

    fn apply(&self, x: &Matrix<T>, y: &mut Matrix<T>) {
        // y = K M^{-1/2} x on owned rows (input scaling fused, as serial).
        // The trait signature is infallible: on a comm failure the error is
        // already recorded in the (poisoned) communicator, so fill the
        // output with zeros and let the SCF loop observe the failure after
        // the phase.
        if self
            .post_sends(x, TAG_FWD)
            .and_then(|()| self.apply_posted(x, y, TAG_FWD))
            .is_err()
        {
            y.as_mut_slice().fill(T::ZERO);
        }
    }
}

impl<'a, 'c, T: WireScalar> HamOperator<T> for DistHamiltonian<'a, 'c, T> {
    /// Rank-local analytic FLOPs: the slab's share of the sum-factorized
    /// cell work plus the owned rows' scaling/potential arithmetic.
    fn apply_flops(&self, ncols: usize) -> u64 {
        let space = self.dist.space;
        let dec = &self.dist.dec;
        let per_cell_cols = space.stiffness_apply_flops::<T>(ncols) / space.cells().len() as u64;
        per_cell_cols * dec.range.len() as u64
            + (dec.n_owned() * ncols) as u64 * (3 * T::MUL_FLOPS + T::ADD_FLOPS)
    }
}

/// One Chebyshev three-term elementwise update restricted to a row subset:
/// step 1 is `y <- (y - c x) σ1/e`, later steps are
/// `hy <- (hy - c y) 2σ2/e - (σ σ2) x` (pass `x2 = Some(x)`). Per-row
/// arithmetic is independent, so splitting rows into boundary/interior
/// sweeps cannot change a single bit of the result.
fn cheb_update_rows<T: Scalar>(
    out: &mut Matrix<T>,
    prev: &Matrix<T>,
    x2: Option<&Matrix<T>>,
    rows: &[u32],
    ce: T::Re,
    se: T::Re,
    ss2: T::Re,
) {
    for j in 0..out.ncols() {
        let pcol = prev.col(j);
        let xcol = x2.map(|x| x.col(j));
        let ocol = out.col_mut(j);
        for &l in rows {
            let l = l as usize;
            let mut v = (ocol[l] - pcol[l].scale(ce)).scale(se);
            if let Some(xc) = xcol {
                v -= xc[l].scale(ss2);
            }
            ocol[l] = v;
        }
    }
}

/// The cross-iteration-overlapped distributed Chebyshev filter (the
/// paper's dual-stream scheme, Sec. 5.4.1): as soon as degree step `k` has
/// updated the *boundary* rows of the next iterate, step `k + 1`'s forward
/// ghost exchange is posted — so the wire carries it while step `k` is
/// still updating interior rows and step `k + 1` is running its interior
/// cell kernels. Consecutive steps alternate between two forward tag
/// lanes ([`TAG_FWD`] / [`TAG_FWD2`], a double-buffered ghost region), and
/// a step's look-ahead posts only after the previous step's reverse
/// harvest completed, so every peer has already drained the older lane.
///
/// The recurrence arithmetic is element-for-element that of
/// [`chebyshev_filter_scratch`] on [`DistHamiltonian`] — results are
/// bit-identical with overlap on or off; only the wait time moves.
pub struct PipelinedFilter<'h, 'a, 'c, T: Scalar> {
    h: &'h DistHamiltonian<'a, 'c, T>,
    /// Owned rows some peer ghosts (the forward-send payload), sorted.
    boundary_rows: Vec<u32>,
    /// The remaining owned rows, sorted.
    interior_rows: Vec<u32>,
}

impl<'h, 'a, 'c, T: WireScalar> PipelinedFilter<'h, 'a, 'c, T> {
    /// Wrap a distributed Hamiltonian for pipelined filtering.
    pub fn new(h: &'h DistHamiltonian<'a, 'c, T>) -> Self {
        let dec = &h.dist.dec;
        let n_owned = dec.n_owned();
        let mut is_boundary = vec![false; n_owned];
        for (_, idxs) in &dec.send_to {
            for &l in idxs {
                is_boundary[l as usize] = true;
            }
        }
        let (mut boundary_rows, mut interior_rows) = (Vec::new(), Vec::new());
        for (l, &b) in is_boundary.iter().enumerate() {
            if b {
                boundary_rows.push(l as u32);
            } else {
                interior_rows.push(l as u32);
            }
        }
        Self {
            h,
            boundary_rows,
            interior_rows,
        }
    }
}

impl<T: WireScalar> CfDriver<T> for PipelinedFilter<'_, '_, '_, T> {
    fn filter_block(
        &self,
        x: &mut Matrix<T>,
        m: usize,
        a: f64,
        b: f64,
        a0: f64,
        scratch: &mut CfScratch<T>,
    ) {
        assert!(m >= 1 && b > a && a > a0);
        let (n, nc) = x.shape();
        let e = (b - a) / 2.0;
        let c = (b + a) / 2.0;
        let mut sigma = e / (a0 - c);
        let sigma1 = sigma;
        let gamma = 2.0 / sigma1;
        let (y, hy) = scratch.buffers(n, nc);
        let ce = T::Re::from_f64(c);

        // On a comm failure the communicator is poisoned; zero the block
        // (the infallible-apply convention) and let the SCF observe it.
        macro_rules! or_bail {
            ($r:expr) => {
                if $r.is_err() {
                    x.as_mut_slice().fill(T::ZERO);
                    return;
                }
            };
        }

        // Step 1: Y = (H X - c X) σ1/e. Nothing is in flight yet, so post
        // X's exchange here; every later exchange is posted mid-step below.
        or_bail!(self.h.post_sends(x, fwd_tag(0)));
        or_bail!(self.h.apply_posted(x, y, fwd_tag(0)));
        let s1e = T::Re::from_f64(sigma1 / e);
        let zero = T::Re::from_f64(0.0);
        cheb_update_rows(y, x, None, &self.boundary_rows, ce, s1e, zero);
        if m >= 2 {
            // step 2's input is Y: its boundary rows are final, ship them
            or_bail!(self.h.post_sends(y, fwd_tag(1)));
        }
        cheb_update_rows(y, x, None, &self.interior_rows, ce, s1e, zero);

        for k in 2..=m {
            let sigma2 = 1.0 / (gamma - sigma);
            or_bail!(self.h.apply_posted(y, hy, fwd_tag(k - 1)));
            let s2e = T::Re::from_f64(2.0 * sigma2 / e);
            let ss2 = T::Re::from_f64(sigma * sigma2);
            cheb_update_rows(hy, y, Some(x), &self.boundary_rows, ce, s2e, ss2);
            if k < m {
                // after the rotation below, HY is step k+1's input
                or_bail!(self.h.post_sends(hy, fwd_tag(k)));
            }
            cheb_update_rows(hy, y, Some(x), &self.interior_rows, ce, s2e, ss2);
            std::mem::swap(x, y);
            std::mem::swap(y, hy);
            sigma = sigma2;
        }
        std::mem::swap(x, y);
    }
}
