//! Distributed stiffness / Hamiltonian application with overlapped ghost
//! exchange.
//!
//! One apply runs the paper's boundary/interior split (Sec. 5.4.1):
//!
//! 1. **post** — pack this rank's owned boundary rows and `isend` them to
//!    every ghosting peer (nonblocking: the channel transport buffers);
//! 2. **interior** — sum-factorized cell kernels over cells whose DoFs are
//!    all owned, while the boundary messages are in flight;
//! 3. **harvest** — `try_recv`-poll the ghost payloads, fill the extended
//!    vector, and run the boundary cells;
//! 4. **fold back** — ghost rows of the result hold partial sums belonging
//!    to other ranks: `isend` them to their owners and accumulate the
//!    incoming partials into owned rows *in ascending peer order*, so the
//!    result is independent of message arrival order (deterministic runs).
//!
//! Wire precision is selectable per operator: the distributed SCF keeps an
//! FP64 Hamiltonian for Rayleigh-Ritz and an FP32-wire twin for the
//! Chebyshev filter, the paper's "FP32 boundary communication, FP64 math"
//! scheme (Sec. 5.4.2).

use crate::decomp::Decomposition;
use dft_core::hamiltonian::HamOperator;
use dft_fem::space::{phase_products, FeSpace};
use dft_hpc::comm::{wire_tag_band, CommError, ThreadComm, WirePrecision};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar, C64};
use std::sync::Mutex;
use std::time::Instant;

/// The per-rank communicator behind a [`Mutex`], so operators that must be
/// [`Sync`] (the [`LinearOperator`] supertrait bound) can share it. Locks
/// are uncontended — each rank is one thread — so this costs an atomic per
/// exchange, not a wait.
pub struct SharedComm<'a>(pub Mutex<&'a mut ThreadComm>);

impl<'a> SharedComm<'a> {
    /// Wrap a rank's communicator for use by distributed operators.
    pub fn new(comm: &'a mut ThreadComm) -> Self {
        Self(Mutex::new(comm))
    }

    /// Run `f` with exclusive access to the communicator.
    pub fn with<R>(&self, f: impl FnOnce(&mut ThreadComm) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// The failure that poisoned the underlying communicator, if any.
    pub fn failure(&self) -> Option<CommError> {
        self.with(|c| c.failure())
    }
}

/// The wire-tag band of the ghost exchange (forward + reverse legs, both
/// precision framings) — for [`FaultPlan`](dft_hpc::comm::FaultPlan) rules
/// that kill a rank mid-Hamiltonian-apply.
pub fn ghost_tag_band() -> (u64, u64) {
    (wire_tag_band(TAG_FWD).0, wire_tag_band(TAG_REV).1)
}

/// Scalars that can cross the wire as `f64` components: `f64` is itself,
/// [`C64`] interleaves `re, im`. (FP32 demotion happens a layer below, in
/// [`ThreadComm::send_f64`].)
pub trait WireScalar: Scalar {
    /// `f64` components per scalar.
    const COMPONENTS: usize;
    /// Append the components of `v` to `buf`.
    fn pack_into(v: Self, buf: &mut Vec<f64>);
    /// Read the scalar at component offset `i * COMPONENTS`.
    fn unpack_at(buf: &[f64], i: usize) -> Self;
}

impl WireScalar for f64 {
    const COMPONENTS: usize = 1;
    #[inline]
    fn pack_into(v: Self, buf: &mut Vec<f64>) {
        buf.push(v);
    }
    #[inline]
    fn unpack_at(buf: &[f64], i: usize) -> Self {
        buf[i]
    }
}

impl WireScalar for C64 {
    const COMPONENTS: usize = 2;
    #[inline]
    fn pack_into(v: Self, buf: &mut Vec<f64>) {
        buf.push(v.re);
        buf.push(v.im);
    }
    #[inline]
    fn unpack_at(buf: &[f64], i: usize) -> Self {
        C64::new(buf[2 * i], buf[2 * i + 1])
    }
}

/// Ghost-exchange message tags, in a band far from the collectives' tags.
const TAG_FWD: u64 = 1 << 55;
const TAG_REV: u64 = (1 << 55) + 1;

/// Poll `try_recv_f64` round-robin over `peers` until every payload has
/// arrived; payloads are returned in the *list* order (not arrival order),
/// which is what keeps downstream accumulation deterministic. The poll runs
/// against the communicator's receive deadline: a peer that never delivers
/// poisons the communicator with [`CommError::Timeout`] instead of spinning
/// forever.
fn harvest<'p>(
    comm: &SharedComm<'_>,
    peers: impl Iterator<Item = &'p usize>,
    tag: u64,
    wire: WirePrecision,
) -> Result<Vec<Vec<f64>>, CommError> {
    let peers: Vec<usize> = peers.copied().collect();
    let mut got: Vec<Option<Vec<f64>>> = vec![None; peers.len()];
    let mut remaining = peers.len();
    let deadline = Instant::now() + comm.with(|c| c.timeout());
    while remaining > 0 {
        comm.with(|c| -> Result<(), CommError> {
            for (slot, &p) in got.iter_mut().zip(peers.iter()) {
                if slot.is_none() {
                    if let Some(buf) = c.try_recv_f64(p, tag, wire)? {
                        *slot = Some(buf);
                        remaining -= 1;
                    }
                }
            }
            Ok(())
        })?;
        if remaining > 0 {
            if Instant::now() >= deadline {
                let missing = peers
                    .iter()
                    .zip(got.iter())
                    .find(|(_, s)| s.is_none())
                    .map_or(0, |(&p, _)| p);
                let band = wire_tag_band(tag).0 + u64::from(wire == WirePrecision::Fp32);
                let e = CommError::Timeout {
                    src: missing,
                    tag: band,
                };
                comm.with(|c| c.fail(e));
                return Err(e);
            }
            std::thread::yield_now();
        }
    }
    // dftlint:allow(L001, reason="the wait loop above returns early unless every slot was filled")
    Ok(got.into_iter().map(|s| s.unwrap()).collect())
}

/// A partitioned FE space: one rank's slab plus its exchange machinery.
pub struct DistSpace<'a> {
    /// The (replicated) global FE space.
    pub space: &'a FeSpace,
    /// This rank's decomposition.
    pub dec: Decomposition,
}

impl<'a> DistSpace<'a> {
    /// Build rank `rank` of `nranks`'s view of `space`.
    pub fn new(space: &'a FeSpace, rank: usize, nranks: usize) -> Self {
        Self {
            space,
            dec: Decomposition::new(space, rank, nranks),
        }
    }

    /// Distributed `Y = K X` on owned DoF rows (the distributed
    /// counterpart of [`FeSpace::apply_stiffness`]): `x` and `y` are
    /// `n_owned x ncols`. Fails (and poisons the communicator) if a ghost
    /// exchange times out or a peer is lost.
    pub fn apply_stiffness<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        self.apply_cells(comm, x, y, phases, None, wire)
    }

    /// The shared kernel: optional fused per-row `M^{-1/2}` input scaling
    /// (indexed by *global* DoF, as in the serial fused path).
    fn apply_cells<T: WireScalar>(
        &self,
        comm: &SharedComm<'_>,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        row_scale: Option<&[f64]>,
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        let dec = &self.dec;
        let (n_owned, n_ext) = (dec.n_owned(), dec.n_ext());
        let nc = x.ncols();
        assert_eq!(x.nrows(), n_owned);
        assert_eq!(y.shape(), (n_owned, nc));

        // 1. post the owned boundary rows (raw, unscaled: the receiver owns
        //    the same global mass diagonal and scales locally)
        comm.with(|c| -> Result<(), CommError> {
            for (peer, idxs) in &dec.send_to {
                let mut buf = Vec::with_capacity(idxs.len() * nc * T::COMPONENTS);
                for j in 0..nc {
                    let col = x.col(j);
                    for &l in idxs {
                        T::pack_into(col[l as usize], &mut buf);
                    }
                }
                c.isend_f64(*peer, TAG_FWD, &buf, wire)?;
            }
            Ok(())
        })?;

        // extended input: owned rows (scaled) now, ghosts after harvest
        let mut x_ext = Matrix::<T>::zeros(n_ext, nc);
        for j in 0..nc {
            let src = x.col(j);
            let dst = &mut x_ext.col_mut(j)[..n_owned];
            dst.copy_from_slice(src);
            if let Some(s) = row_scale {
                for (l, v) in dst.iter_mut().enumerate() {
                    *v = v.scale(T::Re::from_f64(s[dec.owned[l] as usize]));
                }
            }
        }
        let mut y_ext = Matrix::<T>::zeros(n_ext, nc);

        // 2. interior cells while boundary payloads are in flight
        self.run_cells(&dec.interior_cells, &x_ext, &mut y_ext, phases);

        // 3. harvest ghosts, then the boundary cells
        let bufs = harvest(comm, dec.recv_from.iter().map(|(p, _)| p), TAG_FWD, wire)?;
        for ((_, idxs), buf) in dec.recv_from.iter().zip(bufs.iter()) {
            assert_eq!(buf.len(), idxs.len() * nc * T::COMPONENTS);
            for j in 0..nc {
                let col = x_ext.col_mut(j);
                for (k, &l) in idxs.iter().enumerate() {
                    let mut v = T::unpack_at(buf, j * idxs.len() + k);
                    if let Some(s) = row_scale {
                        let g = dec.ghosts[l as usize - n_owned] as usize;
                        v = v.scale(T::Re::from_f64(s[g]));
                    }
                    col[l as usize] = v;
                }
            }
        }
        self.run_cells(&dec.boundary_cells, &x_ext, &mut y_ext, phases);

        // 4. fold ghost partial sums back to their owners; accumulate the
        //    incoming partials in ascending peer order (deterministic)
        comm.with(|c| -> Result<(), CommError> {
            for (peer, idxs) in &dec.recv_from {
                let mut buf = Vec::with_capacity(idxs.len() * nc * T::COMPONENTS);
                for j in 0..nc {
                    let col = y_ext.col(j);
                    for &l in idxs {
                        T::pack_into(col[l as usize], &mut buf);
                    }
                }
                c.isend_f64(*peer, TAG_REV, &buf, wire)?;
            }
            Ok(())
        })?;
        let bufs = harvest(comm, dec.send_to.iter().map(|(p, _)| p), TAG_REV, wire)?;
        for ((_, idxs), buf) in dec.send_to.iter().zip(bufs.iter()) {
            assert_eq!(buf.len(), idxs.len() * nc * T::COMPONENTS);
            for j in 0..nc {
                let col = y_ext.col_mut(j);
                for (k, &l) in idxs.iter().enumerate() {
                    col[l as usize] += T::unpack_at(buf, j * idxs.len() + k);
                }
            }
        }
        for j in 0..nc {
            y.col_mut(j).copy_from_slice(&y_ext.col(j)[..n_owned]);
        }
        Ok(())
    }

    /// Gather-kernel-scatter over the given slab-local cells, column-
    /// parallel (columns are independent, so the rayon split cannot change
    /// any accumulation order).
    fn run_cells<T: Scalar>(
        &self,
        cells: &[u32],
        x_ext: &Matrix<T>,
        y_ext: &mut Matrix<T>,
        phases: [T; 3],
    ) {
        use rayon::prelude::*;
        let space = self.space;
        let dec = &self.dec;
        let nloc = space.nloc();
        let n_ext = dec.n_ext();
        if n_ext == 0 {
            // empty-owned rank (nranks > ncells): nothing to gather or
            // scatter, and par_chunks_mut(0) would panic
            return;
        }
        let gather_tab = phase_products(phases, false);
        let scatter_tab = phase_products(phases, true);
        y_ext
            .as_mut_slice()
            .par_chunks_mut(n_ext)
            .zip(x_ext.as_slice().par_chunks(n_ext))
            .for_each(|(ycol, xcol)| {
                let mut x_loc = vec![T::ZERO; nloc];
                let mut y_loc = vec![T::ZERO; nloc];
                for &lc in cells {
                    let ci = dec.range.start + lc as usize;
                    let tab = &dec.cell_dof_local[lc as usize * nloc..(lc as usize + 1) * nloc];
                    let wraps = space.cell_wraps(ci);
                    for l in 0..nloc {
                        let d = tab[l];
                        let mut v = if d >= 0 { xcol[d as usize] } else { T::ZERO };
                        if wraps[l] != 0 {
                            v *= gather_tab[wraps[l] as usize];
                        }
                        x_loc[l] = v;
                    }
                    y_loc.fill(T::ZERO);
                    space.cell_stiffness_apply(space.cells()[ci].h, &x_loc, &mut y_loc);
                    for l in 0..nloc {
                        let d = tab[l];
                        if d >= 0 {
                            let mut v = y_loc[l];
                            if wraps[l] != 0 {
                                v *= scatter_tab[wraps[l] as usize];
                            }
                            ycol[d as usize] += v;
                        }
                    }
                }
            });
    }
}

/// The distributed Kohn-Sham Hamiltonian: the owner of this rank's owned
/// DoF rows of `Hhat = 1/2 M^{-1/2} K M^{-1/2} + diag(v_eff)`.
pub struct DistHamiltonian<'a, 'c, T: Scalar> {
    dist: &'a DistSpace<'a>,
    comm: &'a SharedComm<'c>,
    /// Effective potential at owned DoFs.
    v_eff_owned: Vec<f64>,
    /// Bloch phases per axis.
    pub phases: [T; 3],
    wire: WirePrecision,
}

impl<'a, 'c, T: WireScalar> DistHamiltonian<'a, 'c, T> {
    /// Build from the replicated full nodal effective potential.
    pub fn new(
        dist: &'a DistSpace<'a>,
        comm: &'a SharedComm<'c>,
        v_eff_nodes: &[f64],
        phases: [T; 3],
        wire: WirePrecision,
    ) -> Self {
        assert_eq!(v_eff_nodes.len(), dist.space.nnodes());
        let v_eff_owned = dist
            .dec
            .owned
            .iter()
            .map(|&d| v_eff_nodes[dist.space.node_of_dof(d as usize)])
            .collect();
        Self {
            dist,
            comm,
            v_eff_owned,
            phases,
            wire,
        }
    }
}

impl<'a, 'c, T: WireScalar> LinearOperator<T> for DistHamiltonian<'a, 'c, T> {
    fn dim(&self) -> usize {
        self.dist.dec.n_owned()
    }

    fn apply(&self, x: &Matrix<T>, y: &mut Matrix<T>) {
        let dec = &self.dist.dec;
        let s = self.dist.space.inv_sqrt_mass();
        // y = K M^{-1/2} x on owned rows (input scaling fused, as serial).
        // The trait signature is infallible: on a comm failure the error is
        // already recorded in the (poisoned) communicator, so fill the
        // output with zeros and let the SCF loop observe the failure after
        // the phase.
        if self
            .dist
            .apply_cells(self.comm, x, y, self.phases, Some(s), self.wire)
            .is_err()
        {
            y.as_mut_slice().fill(T::ZERO);
            return;
        }
        // y = 1/2 M^{-1/2} y + v x
        for j in 0..y.ncols() {
            let xcol = x.col(j);
            let ycol = y.col_mut(j);
            for (l, (yv, &xv)) in ycol.iter_mut().zip(xcol.iter()).enumerate() {
                let si = s[dec.owned[l] as usize];
                *yv = yv.scale(T::Re::from_f64(0.5 * si))
                    + xv.scale(T::Re::from_f64(self.v_eff_owned[l]));
            }
        }
    }
}

impl<'a, 'c, T: WireScalar> HamOperator<T> for DistHamiltonian<'a, 'c, T> {
    /// Rank-local analytic FLOPs: the slab's share of the sum-factorized
    /// cell work plus the owned rows' scaling/potential arithmetic.
    fn apply_flops(&self, ncols: usize) -> u64 {
        let space = self.dist.space;
        let dec = &self.dist.dec;
        let per_cell_cols = space.stiffness_apply_flops::<T>(ncols) / space.cells().len() as u64;
        per_cell_cols * dec.range.len() as u64
            + (dec.n_owned() * ncols) as u64 * (3 * T::MUL_FLOPS + T::ADD_FLOPS)
    }
}
