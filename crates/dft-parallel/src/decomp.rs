//! Per-rank owned/ghost DoF maps over a slab partition of the FE mesh.
//!
//! Every rank derives the *entire* decomposition — all slabs, all owners —
//! from the shared [`FeSpace`] tables with [`dft_fem::partition`], so the
//! maps agree across ranks without any setup communication and are
//! bit-reproducible (satellite: deterministic rank partitioning). Exchange
//! lists are kept in ascending global-DoF order on both sides, which makes
//! the send and receive sides of every peer pair agree on packing order by
//! construction.

use dft_fem::partition::{dof_owners, node_owners, partition_cells, CellRange};
use dft_fem::space::FeSpace;

/// This rank's view of the domain decomposition.
pub struct Decomposition {
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub nranks: usize,
    /// Contiguous global cell slab `[start, end)` owned by this rank.
    pub range: CellRange,
    /// Global DoF ids owned by this rank, ascending. Local indices
    /// `0..n_owned()` refer to these rows.
    pub owned: Vec<u32>,
    /// Global DoF ids ghosted on this rank (owned elsewhere, touched by a
    /// local cell), ascending. Local extended indices `n_owned()..n_ext()`
    /// refer to these.
    pub ghosts: Vec<u32>,
    /// Per local cell and local node: extended-local DoF index, or `-1` on
    /// eliminated Dirichlet nodes (layout `[cell_in_slab * nloc + l]`).
    pub cell_dof_local: Vec<i32>,
    /// Slab-local indices of cells whose DoFs are all owned (computable
    /// before any ghost value arrives).
    pub interior_cells: Vec<u32>,
    /// Slab-local indices of cells touching at least one ghost DoF.
    pub boundary_cells: Vec<u32>,
    /// Outbound exchange: `(peer, owned-local indices)` of the boundary
    /// rows the peer ghosts, ascending peers, ascending global ids within.
    pub send_to: Vec<(usize, Vec<u32>)>,
    /// Inbound exchange: `(peer, extended-local ghost indices)` to fill
    /// from the peer, ascending peers, ascending global ids within.
    pub recv_from: Vec<(usize, Vec<u32>)>,
    /// Per FE node: whether this rank owns it (first-touch) — the mask for
    /// distributed Anderson-mixing weights and density ownership.
    pub owned_node: Vec<bool>,
}

impl Decomposition {
    /// Build rank `rank` of `nranks`'s decomposition of `space`. Pure
    /// function of its arguments — every rank computes consistent maps
    /// independently.
    pub fn new(space: &FeSpace, rank: usize, nranks: usize) -> Self {
        assert!(rank < nranks);
        let ncells = space.cells().len();
        // nranks > ncells is legal: trailing ranks get an empty slab, own
        // nothing, and still participate in every collective
        let ranges = partition_cells(ncells, nranks);
        let owners = dof_owners(space, &ranges);
        let node_owner = node_owners(space, &ranges);
        let range = ranges[rank];
        let me = rank as u32;

        let owned: Vec<u32> = (0..space.ndofs() as u32)
            .filter(|&d| owners[d as usize] == me)
            .collect();
        let mut ghosts: Vec<u32> = Vec::new();
        for ci in range.start..range.end {
            for &d in space.cell_dofs(ci) {
                if d >= 0 && owners[d as usize] != me {
                    ghosts.push(d as u32);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();

        // global -> extended-local index
        let mut local_of_global = vec![-1i64; space.ndofs()];
        for (l, &d) in owned.iter().enumerate() {
            local_of_global[d as usize] = l as i64;
        }
        let n_owned = owned.len();
        for (g, &d) in ghosts.iter().enumerate() {
            local_of_global[d as usize] = (n_owned + g) as i64;
        }

        // localized per-cell DoF tables + interior/boundary split
        let nloc = space.nloc();
        let nlocal_cells = range.len();
        let mut cell_dof_local = Vec::with_capacity(nlocal_cells * nloc);
        let mut interior_cells = Vec::new();
        let mut boundary_cells = Vec::new();
        for (lc, ci) in (range.start..range.end).enumerate() {
            let mut has_ghost = false;
            for &d in space.cell_dofs(ci) {
                if d < 0 {
                    cell_dof_local.push(-1);
                } else {
                    let l = local_of_global[d as usize];
                    debug_assert!(l >= 0, "cell DoF must be owned or ghosted locally");
                    has_ghost |= l as usize >= n_owned;
                    cell_dof_local.push(l as i32);
                }
            }
            if has_ghost {
                boundary_cells.push(lc as u32);
            } else {
                interior_cells.push(lc as u32);
            }
        }

        // exchange lists: peer p ghosts DoF d owned by me iff one of p's
        // cells touches d; symmetric by construction since both sides scan
        // the same global tables and sort by global id
        let mut send_to = Vec::new();
        let mut recv_from = Vec::new();
        for (p, prange) in ranges.iter().enumerate() {
            if p == rank {
                continue;
            }
            // what I must send to p: my DoFs touched by p's cells
            let mut out: Vec<u32> = Vec::new();
            for ci in prange.start..prange.end {
                for &d in space.cell_dofs(ci) {
                    if d >= 0 && owners[d as usize] == me {
                        out.push(d as u32);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            if !out.is_empty() {
                let idx = out
                    .iter()
                    .map(|&d| local_of_global[d as usize] as u32)
                    .collect();
                send_to.push((p, idx));
            }
            // what I receive from p: my ghosts owned by p
            let inn: Vec<u32> = ghosts
                .iter()
                .filter(|&&d| owners[d as usize] == p as u32)
                .map(|&d| local_of_global[d as usize] as u32)
                .collect();
            if !inn.is_empty() {
                recv_from.push((p, inn));
            }
        }

        let owned_node = node_owner.iter().map(|&o| o == me).collect();

        Self {
            rank,
            nranks,
            range,
            owned,
            ghosts,
            cell_dof_local,
            interior_cells,
            boundary_cells,
            send_to,
            recv_from,
            owned_node,
        }
    }

    /// Rows owned by this rank (the local wavefunction row count).
    #[inline]
    pub fn n_owned(&self) -> usize {
        self.owned.len()
    }

    /// Owned + ghost rows (the extended local vector length).
    #[inline]
    pub fn n_ext(&self) -> usize {
        self.owned.len() + self.ghosts.len()
    }

    /// Restrict a replicated full-DoF vector to this rank's owned rows.
    pub fn restrict<T: Copy>(&self, full: &[T]) -> Vec<T> {
        self.owned.iter().map(|&d| full[d as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fem::mesh::Mesh3d;

    #[test]
    fn owned_sets_partition_the_dofs() {
        let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
        for nranks in [1, 2, 4] {
            let decs: Vec<Decomposition> = (0..nranks)
                .map(|r| Decomposition::new(&space, r, nranks))
                .collect();
            let total: usize = decs.iter().map(|d| d.n_owned()).sum();
            assert_eq!(total, space.ndofs());
            let mut seen = vec![false; space.ndofs()];
            for d in &decs {
                for &g in &d.owned {
                    assert!(!seen[g as usize], "DoF {g} owned twice");
                    seen[g as usize] = true;
                }
            }
        }
    }

    #[test]
    fn exchange_lists_are_symmetric() {
        let space = FeSpace::new(Mesh3d::cube(3, 6.0, 2));
        let nranks = 4;
        let decs: Vec<Decomposition> = (0..nranks)
            .map(|r| Decomposition::new(&space, r, nranks))
            .collect();
        for a in 0..nranks {
            for b in 0..nranks {
                if a == b {
                    continue;
                }
                let send = decs[a].send_to.iter().find(|(p, _)| *p == b);
                let recv = decs[b].recv_from.iter().find(|(p, _)| *p == a);
                match (send, recv) {
                    (None, None) => {}
                    (Some((_, s)), Some((_, r))) => {
                        assert_eq!(s.len(), r.len(), "ranks {a}->{b} length mismatch");
                        // same global DoFs in the same order on both sides
                        let sg: Vec<u32> = s.iter().map(|&l| decs[a].owned[l as usize]).collect();
                        let rg: Vec<u32> = r
                            .iter()
                            .map(|&l| decs[b].ghosts[l as usize - decs[b].n_owned()])
                            .collect();
                        assert_eq!(sg, rg, "ranks {a}->{b} global id mismatch");
                    }
                    _ => panic!("asymmetric exchange between ranks {a} and {b}"),
                }
            }
        }
    }

    /// Satellite regression: 5 ranks on a 4-cell mesh. The trailing rank
    /// gets an empty slab, owns nothing, ghosts nothing, and exchanges with
    /// nobody — but the decomposition must still build, and the four real
    /// slabs must still tile the DoFs.
    #[test]
    fn more_ranks_than_cells_yields_consistent_empty_slabs() {
        use dft_fem::mesh::{Axis, BoundaryCondition as Bc};
        let mesh = Mesh3d::new(
            [
                Axis::uniform(4, 0.0, 8.0, Bc::Dirichlet),
                Axis::uniform(1, 0.0, 2.0, Bc::Dirichlet),
                Axis::uniform(1, 0.0, 2.0, Bc::Dirichlet),
            ],
            2,
        );
        let space = FeSpace::new(mesh);
        assert_eq!(space.cells().len(), 4);
        let nranks = 5;
        let decs: Vec<Decomposition> = (0..nranks)
            .map(|r| Decomposition::new(&space, r, nranks))
            .collect();
        let empty = &decs[4];
        assert!(empty.range.is_empty());
        assert_eq!(empty.n_owned(), 0);
        assert_eq!(empty.n_ext(), 0);
        assert!(empty.send_to.is_empty() && empty.recv_from.is_empty());
        assert!(empty.interior_cells.is_empty() && empty.boundary_cells.is_empty());
        assert!(empty.owned_node.iter().all(|&o| !o));
        // the non-empty ranks still partition every DoF exactly once
        let total: usize = decs.iter().map(|d| d.n_owned()).sum();
        assert_eq!(total, space.ndofs());
        // and no exchange list ever names the empty rank
        for d in &decs {
            assert!(d.send_to.iter().all(|(p, _)| *p != 4));
            assert!(d.recv_from.iter().all(|(p, _)| *p != 4));
        }
    }

    #[test]
    fn interior_cells_touch_no_ghosts() {
        let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
        let dec = Decomposition::new(&space, 1, 4);
        let nloc = space.nloc();
        for &lc in &dec.interior_cells {
            let tab = &dec.cell_dof_local[lc as usize * nloc..(lc as usize + 1) * nloc];
            assert!(tab.iter().all(|&l| l < 0 || (l as usize) < dec.n_owned()));
        }
        assert_eq!(
            dec.interior_cells.len() + dec.boundary_cells.len(),
            dec.range.len()
        );
    }
}
