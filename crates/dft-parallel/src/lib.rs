//! # dft-parallel
//!
//! The distributed-memory Kohn-Sham solver: the paper's massively parallel
//! ChFES (Secs. 5.4.1-5.4.2) realized on the threaded MPI stand-in of
//! [`dft_hpc::comm`]. The FE mesh is split into contiguous slabs of cells
//! across ranks, wavefunction blocks are sharded by owned DoF rows, and the
//! dense subspace steps (CholGS, Rayleigh-Ritz) run through the
//! reduction-hooked [`dft_core::chfes_reduced`] with cross-rank allreduces.
//!
//! * [`decomp`] — per-rank owned/ghost DoF maps derived deterministically
//!   from [`dft_fem::partition`] (no setup communication);
//! * [`operator`] — the distributed stiffness / Hamiltonian apply: ghost
//!   exchange posted with nonblocking `isend`, *overlapped* with
//!   interior-cell sum-factorized compute, harvested with `try_recv`, and
//!   reverse-accumulated in deterministic rank order — with
//!   [`WirePrecision`](dft_hpc::WirePrecision) selecting FP64 or FP32
//!   boundary payloads (the paper's comm-halving trick);
//! * [`reduce`] — the [`ClusterReducer`] that sums subspace matrices with
//!   `allreduce_sum_f64`, leaving bit-identical results on every rank;
//! * [`scf`] — the distributed SCF driver: replicated nodal fields and
//!   Poisson solves, sharded eigensolver, density assembly by allreduce,
//!   Anderson mixing with owned-node-masked Gram reduction, per-rank
//!   [`ScfProfile`](dft_hpc::ScfProfile)s and a merged comm-volume report;
//! * [`checkpoint`] — versioned, checksummed per-rank SCF snapshots
//!   (density, wavefunction shards, mixer history, chemical potential)
//!   written atomically every `checkpoint_every` iterations;
//! * [`recover`] — the restart drivers: on rank loss the survivors return
//!   [`ScfError::RankLost`] within the communicator deadline (never a
//!   hang), and [`scf_with_recovery`] / [`relax_with_recovery`] relaunch
//!   from the newest complete snapshot at a reduced rank count;
//! * [`forces`] — distributed Hellmann-Feynman force assembly: replicated
//!   force Poisson solve, owned-node electrostatic quadrature plus a
//!   rank-sharded ion-ion image sum, reassembled by one fixed-rank-order
//!   allreduce (bit-identical across ranks and repeated runs);
//! * [`relax`] — distributed FIRE relaxation and velocity-Verlet BO-MD
//!   with wavefunction extrapolation: each geometry step's SCF
//!   warm-starts from the previous step's converged density, mixer
//!   history, and psi shards through the checkpoint/`restart_from`
//!   machinery, with a checksummed integrator-state file making the whole
//!   trajectory preemptible and fault-recoverable.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod decomp;
pub mod forces;
pub mod grid;
pub mod operator;
pub mod recover;
pub mod reduce;
pub mod relax;
pub mod scf;

pub use checkpoint::{LoadedCheckpoint, ReplicatedScfState};
pub use decomp::Decomposition;
pub use forces::{
    distributed_forces, distributed_forces_profiled, DistForceError, ForceAssemblyProfile,
};
pub use grid::{GridShape, ProcessGrid};
pub use operator::{
    ghost_tag_band, DistHamiltonian, DistSpace, PipelinedFilter, SharedComm, WireScalar,
};
pub use recover::{relax_with_recovery, scf_with_recovery, RecoveryReport, RelaxRecoveryReport};
pub use reduce::{ClusterReducer, CommVolume, GridReducer};
pub use relax::{
    dist_md, dist_relax, DistMdResult, DistRelaxConfig, DistRelaxResult, MdConfig, MdStepRecord,
    RelaxError, RelaxStepRecord,
};
pub use scf::{distributed_scf, DistScfConfig, DistScfResult, PreemptToken, ScfError};
