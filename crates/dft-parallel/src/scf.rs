//! The distributed-memory SCF driver.
//!
//! The data decomposition follows the paper's hierarchy at miniature scale:
//! wavefunction blocks are sharded by owned DoF rows across ranks, while the
//! *nodal* fields (density, potentials) are replicated — every rank carries
//! the full `rho`, `v_eff`, and Poisson solution, recomputed identically
//! from identical inputs, so those steps need no communication at all. The
//! communication in one SCF iteration is exactly:
//!
//! * ghost-DoF exchange inside every distributed Hamiltonian apply
//!   (overlapped with interior compute, wire precision selectable);
//! * `allreduce` of the dense subspace matrices in CholGS / Rayleigh-Ritz
//!   via [`ClusterReducer`] (always FP64);
//! * one `allreduce` of the partial density built from owned rows;
//! * one `m x m` Gram `allreduce` inside Anderson mixing, whose weights are
//!   masked to owned nodes so the summed Gram equals the serial one.
//!
//! Every collective leaves bit-identical bytes on all ranks, and all
//! accumulation orders are fixed by rank (never by message arrival), so two
//! runs at the same rank count produce bit-identical energies — and every
//! rank of one run agrees on every replicated quantity to the last bit.

use crate::checkpoint::{self, ReplicatedScfState};
use crate::decomp::Decomposition;
use crate::grid::{GridShape, ProcessGrid};
use crate::operator::{DistHamiltonian, DistSpace, PipelinedFilter, SharedComm, WireScalar};
use crate::reduce::{ClusterReducer, CommVolume, GridReducer};
use dft_core::chebyshev::{
    chfes_reduced, lanczos_bounds, random_subspace, CfFilter, ChfesOptions, SubspaceReducer,
};
use dft_core::hamiltonian::KsHamiltonian;
use dft_core::mixing::AndersonMixer;
use dft_core::occupation::fermi_occupations;
use dft_core::scf::{KPoint, ScfConfig, TotalEnergy};
use dft_core::system::AtomicSystem;
use dft_core::xc::{evaluate_xc, XcFunctional};
use dft_fem::field::NodalField;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::poisson::{solve_poisson, PoissonBc};
use dft_fem::space::FeSpace;
use dft_hpc::comm::{CommError, ThreadComm, WirePrecision};
use dft_hpc::profile::{Phase, PhaseScope, Profile, ScfProfile};
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, C64};
use std::path::PathBuf;

/// Why a distributed SCF did not finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScfError {
    /// A rank died or went silent: this rank's communicator failed at the
    /// given SCF iteration (either this rank was killed, or a peer stopped
    /// responding and a collective timed out). The communicator is poisoned;
    /// the driver should restart from the last checkpoint at a reduced rank
    /// count.
    RankLost {
        /// The reporting rank.
        rank: usize,
        /// Zero-based SCF iteration at which the failure surfaced.
        iteration: usize,
        /// The underlying communication failure.
        cause: CommError,
    },
    /// Checkpoint I/O failed (write, finalize, or restart load).
    Checkpoint {
        /// Zero-based SCF iteration of the failed snapshot.
        iteration: usize,
    },
    /// The run was cooperatively preempted: a [`PreemptToken`] was raised,
    /// every rank agreed on it at the top of the given iteration, and a
    /// complete restart snapshot was written before unwinding (when a
    /// `checkpoint_dir` is configured). Not a failure — the job scheduler
    /// resumes the run later with `restart`, possibly at a different rank
    /// count or grid shape.
    Preempted {
        /// Zero-based SCF iteration the snapshot captures; the resumed run
        /// continues from here.
        iteration: usize,
    },
}

impl std::fmt::Display for ScfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScfError::RankLost {
                rank,
                iteration,
                cause,
            } => write!(f, "rank {rank} lost at SCF iteration {iteration}: {cause}"),
            ScfError::Checkpoint { iteration } => {
                write!(f, "checkpoint I/O failed at SCF iteration {iteration}")
            }
            ScfError::Preempted { iteration } => {
                write!(
                    f,
                    "preempted at SCF iteration {iteration} (snapshot written)"
                )
            }
        }
    }
}

impl std::error::Error for ScfError {}

/// A cooperative preemption handle shared between a job scheduler and the
/// ranks of one distributed SCF. Raising the token asks the run to stop at
/// the next iteration boundary: the ranks reach consensus on the flag via
/// [`ThreadComm::allreduce_max_u64`] (so a flag observed by any rank
/// becomes a decision taken by all), write a complete restart snapshot,
/// and unwind with [`ScfError::Preempted`]. Cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct PreemptToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl PreemptToken {
    /// A fresh, unraised token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the run holding this token to checkpoint and stop.
    pub fn request(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether preemption has been requested (local view; the SCF loop
    /// turns this into a cluster-wide consensus before acting).
    pub fn is_requested(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Lower the flag (e.g. before resuming the preempted job).
    pub fn clear(&self) {
        self.0.store(false, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Distributed SCF configuration: the serial knobs plus the wire precision
/// of the Chebyshev-filter ghost exchange (the paper's Sec. 5.4.2 trick —
/// CholGS/RR reductions and all collectives stay FP64 regardless).
#[derive(Clone, Debug)]
pub struct DistScfConfig {
    /// The serial SCF knobs, applied unchanged (`base.checkpoint_every`
    /// sets the snapshot cadence; 0 disables).
    pub base: ScfConfig,
    /// Wire precision of the boundary exchange during Chebyshev filtering.
    pub wire: WirePrecision,
    /// Root directory for SCF restart snapshots; `None` disables
    /// checkpointing regardless of `base.checkpoint_every`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the newest complete snapshot in `checkpoint_dir` (falls
    /// back to a fresh start when none exists). The restart rank count and
    /// grid shape may differ from the writing run's: shards are reassembled
    /// and restricted to the freshly derived partition.
    pub restart: bool,
    /// Process-grid shape (domain x band x k-group; must tile the rank
    /// count exactly). `None` — the default — runs the PR-3 1D slab path
    /// bit-for-bit: domain decomposition only, [`ClusterReducer`]
    /// all-rank reductions.
    pub grid: Option<GridShape>,
    /// Cross-iteration ghost overlap: filter with the pipelined Chebyshev
    /// driver, which posts degree step `k + 1`'s boundary exchange while
    /// step `k` is still updating interior rows. Bit-identical results;
    /// only exposed ghost-wait time moves.
    pub overlap: bool,
    /// Ship the off-band-diagonal rows of the CholGS overlap and
    /// Rayleigh-Ritz projected-Hamiltonian grid-row reductions in FP32
    /// (Sec. 5.4.2). Only meaningful with `grid`; triggers the FP64
    /// orthonormality cleanup pass after CholGS.
    pub subspace_fp32: bool,
    /// Read-side override for `restart`: resume from the newest complete
    /// snapshot in *this* directory instead of `checkpoint_dir`. This is
    /// the warm-start path of the job server's converged-state cache —
    /// restart reads the cache entry while periodic/preemption snapshots
    /// keep writing to the job's own `checkpoint_dir`. Because a warm
    /// start is an optimization hint rather than a correctness
    /// requirement, an unreadable `restart_from` snapshot degrades to a
    /// fresh start (identically on every rank) instead of failing the run.
    pub restart_from: Option<PathBuf>,
    /// After convergence, export a complete warm-start snapshot of the
    /// *converged* state (final density, mixer history, filter windows,
    /// wavefunctions) into this directory, labeled iteration 1 so a resume
    /// skips the first-iteration multi-pass filtering. This is what the
    /// job server publishes into its converged-state cache.
    pub final_state_dir: Option<PathBuf>,
    /// Cooperative preemption handle. When the token is raised, the ranks
    /// agree on it at the next iteration top, snapshot into
    /// `checkpoint_dir` (if configured) and unwind with
    /// [`ScfError::Preempted`]. `None` — the default — adds no
    /// communication and keeps the schedule bit-identical to earlier PRs.
    pub preempt: Option<PreemptToken>,
}

impl Default for DistScfConfig {
    fn default() -> Self {
        Self {
            base: ScfConfig::default(),
            wire: WirePrecision::Fp64,
            checkpoint_dir: None,
            restart: false,
            grid: None,
            overlap: false,
            subspace_fp32: false,
            restart_from: None,
            final_state_dir: None,
            preempt: None,
        }
    }
}

/// Builder-style constructors, so server code and tests compose exactly
/// the knobs they care about instead of repeating full-struct boilerplate.
impl DistScfConfig {
    /// A config wrapping the given serial knobs, everything else default.
    pub fn new(base: ScfConfig) -> Self {
        Self {
            base,
            ..Self::default()
        }
    }

    /// Set the boundary-exchange wire precision.
    pub fn with_wire(mut self, wire: WirePrecision) -> Self {
        self.wire = wire;
        self
    }

    /// Enable snapshots into `dir` every `every` SCF iterations.
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.base.checkpoint_every = every;
        self
    }

    /// Resume from the newest complete snapshot (in `checkpoint_dir`, or
    /// `restart_from` when set).
    pub fn with_restart(mut self) -> Self {
        self.restart = true;
        self
    }

    /// Warm-start: resume from the newest complete snapshot in `dir`
    /// (read-only; snapshots keep writing to `checkpoint_dir`).
    pub fn with_restart_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.restart = true;
        self.restart_from = Some(dir.into());
        self
    }

    /// Export the converged state into `dir` after the run.
    pub fn with_final_state(mut self, dir: impl Into<PathBuf>) -> Self {
        self.final_state_dir = Some(dir.into());
        self
    }

    /// Run on the given process-grid shape.
    pub fn with_grid(mut self, shape: GridShape) -> Self {
        self.grid = Some(shape);
        self
    }

    /// Enable cross-iteration ghost overlap (pipelined Chebyshev filter).
    pub fn with_overlap(mut self) -> Self {
        self.overlap = true;
        self
    }

    /// Ship off-band-diagonal subspace reduction rows in FP32.
    pub fn with_subspace_fp32(mut self) -> Self {
        self.subspace_fp32 = true;
        self
    }

    /// Attach a cooperative preemption token.
    pub fn with_preempt(mut self, token: PreemptToken) -> Self {
        self.preempt = Some(token);
        self
    }
}

/// One rank's outcome of a distributed SCF. Replicated quantities (energy,
/// eigenvalues, occupations, density, convergence) are bit-identical across
/// the ranks of a run; `profile` and `comm` are per-rank.
pub struct DistScfResult {
    /// This rank.
    pub rank: usize,
    /// Ranks in the run.
    pub nranks: usize,
    /// Energy decomposition (replicated).
    pub energy: TotalEnergy,
    /// Eigenvalues per k-point, ascending (replicated).
    pub eigenvalues: Vec<Vec<f64>>,
    /// Occupations per k-point (replicated).
    pub occupations: Vec<Vec<f64>>,
    /// Chemical potential (replicated).
    pub mu: f64,
    /// Converged electron density, full nodal field (replicated).
    pub density: NodalField,
    /// Final effective potential (replicated).
    pub v_eff: Vec<f64>,
    /// SCF iterations performed.
    pub iterations: usize,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
    /// The snapshot iteration this run resumed from (`None` = fresh start).
    pub resumed_from: Option<usize>,
    /// Residual per iteration (replicated).
    pub residual_history: Vec<f64>,
    /// This rank's per-phase profile (`Some` iff `base.profile`).
    pub profile: Option<ScfProfile>,
    /// Cluster-wide communication volume accrued over this rank's SCF loop
    /// (the [`run_cluster`](dft_hpc::run_cluster) counters are shared).
    pub comm: CommVolume,
}

/// Run the distributed SCF on this rank's communicator. Call from every
/// rank of a [`dft_hpc::run_cluster`] with identical arguments; dispatches
/// to the real (Γ-only) or complex (Bloch) scalar path like
/// [`dft_core::scf::scf`]. Returns [`ScfError::RankLost`] — within the
/// communicator's timeout, never a hang — when this rank is killed or a
/// peer stops responding.
pub fn distributed_scf(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    cfg: &DistScfConfig,
    kpts: &[KPoint],
) -> Result<DistScfResult, ScfError> {
    // Adopt the persisted GEMM blocking profile before the kernel-heavy
    // loop; idempotent and rank-local, so safe to call from every rank.
    let _ = dft_linalg::autotune::load_from_disk();
    let gamma_only = kpts.len() == 1 && kpts[0].is_gamma();
    if gamma_only {
        dist_scf_impl::<f64>(comm, space, system, xc, cfg, kpts)
    } else {
        dist_scf_impl::<C64>(comm, space, system, xc, cfg, kpts)
    }
}

/// Object-safe imaginary-unit shim (mirrors the private one in
/// `dft_core::scf`, which is deliberately not exported).
trait ScalarExt: WireScalar {
    fn imag() -> Self;
}
impl ScalarExt for f64 {
    fn imag() -> Self {
        // dftlint:allow(L001, reason="guarded by T::IS_COMPLEX at the only call site; f64 path is unreachable")
        panic!("no imaginary unit in f64")
    }
}
impl ScalarExt for C64 {
    fn imag() -> Self {
        C64::I
    }
}

/// Bloch phases `e^{i 2 pi f_d}` for k-point `k` (as in `dft_core::scf`).
fn phases_for<T: ScalarExt>(space: &FeSpace, k: &KPoint) -> [T; 3] {
    let mut ph = [T::ONE; 3];
    for d in 0..3 {
        // dftlint:allow(L004, reason="exact Gamma-point sentinel: k.frac is set to literal 0.0, never computed")
        if space.mesh.axes[d].bc() == BoundaryCondition::Periodic && k.frac[d] != 0.0 {
            let theta = 2.0 * std::f64::consts::PI * k.frac[d];
            if T::IS_COMPLEX {
                ph[d] = T::from_f64(theta.cos())
                    + T::imag().scale(<T::Re as Real>::from_f64(theta.sin()));
            } else {
                let c = theta.cos().round();
                assert!(
                    (theta.sin()).abs() < 1e-12 && (c.abs() - 1.0).abs() < 1e-12,
                    "real path supports only Γ / zone-boundary k-points"
                );
                ph[d] = T::from_f64(c);
            }
        }
    }
    ph
}

fn poisson_flops(space: &FeSpace, cg_iterations: usize) -> u64 {
    cg_iterations as u64 * (space.stiffness_apply_flops::<f64>(1) + 10 * space.ndofs() as u64)
}

fn poisson_bytes(space: &FeSpace, cg_iterations: usize) -> u64 {
    cg_iterations as u64 * 10 * space.ndofs() as u64 * std::mem::size_of::<f64>() as u64
}

fn poisson_bc_of(space: &FeSpace) -> PoissonBc<'static> {
    let all_periodic = space
        .mesh
        .axes
        .iter()
        .all(|a| a.bc() == BoundaryCondition::Periodic);
    if all_periodic {
        PoissonBc::Periodic
    } else {
        PoissonBc::Dirichlet(&|_| 0.0)
    }
}

fn dist_scf_impl<T: ScalarExt>(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    cfg: &DistScfConfig,
    kpts: &[KPoint],
) -> Result<DistScfResult, ScfError> {
    let (rank, nranks) = (comm.rank(), comm.size());
    let base = &cfg.base;
    let nd = space.ndofs();
    let n_el = system.n_electrons();
    assert!(
        base.n_states * 2 >= n_el.ceil() as usize,
        "not enough states"
    );
    assert!(base.n_states <= nd, "more states than DoFs");
    let wsum: f64 = kpts.iter().map(|k| k.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-10, "k-point weights must sum to 1");

    // the process grid: config wins, then the DFT_GRID env knob; `None`
    // degenerates to the 1D slab (every rank its own domain slot, identity
    // groups) and keeps the original code route
    let grid_requested = cfg.grid.or_else(GridShape::from_env);
    let shape = grid_requested.unwrap_or_else(|| GridShape::slab(nranks));
    let pgrid = ProcessGrid::new(shape, rank, nranks);
    let grid_mode = grid_requested.is_some();

    let shared = SharedComm::new(comm);
    let dist = DistSpace::new_grid(space, &pgrid);
    let dec = &dist.dec;
    // grid mode reduces along the grid axes (and optionally ships FP32
    // off-band-diagonal blocks); the 1D path keeps the PR-3 all-rank
    // reducer bit-for-bit
    let cluster_reducer;
    let grid_reducer;
    let reducer: &dyn SubspaceReducer<T> = if grid_mode {
        grid_reducer = GridReducer::new(&shared, &pgrid, cfg.subspace_fp32);
        &grid_reducer
    } else {
        cluster_reducer = ClusterReducer::new(&shared);
        &cluster_reducer
    };
    let comm_start = CommVolume::snapshot(&shared);

    let rho_ion = system.ion_density(space);
    let mut rho_in = system.initial_density(space);
    // Anderson weights masked to owned nodes — and to the (band 0,
    // k-group 0) replica of each slab, so every node weighs in exactly
    // once: each rank's weighted dots are partial sums, and the Gram
    // allreduce reassembles the serial Gram
    let masked_weights: Vec<f64> = space
        .mass_diag()
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            if dec.owned_node[i] && pgrid.owns_replicated_fields() {
                w
            } else {
                0.0
            }
        })
        .collect();
    let mut mixer = AndersonMixer::new(base.mixing_alpha, base.anderson_depth, masked_weights);
    // infallible closure shape: a failed allreduce poisons the communicator
    // and is observed right after the mix
    let reduce_gram = |b: &mut [f64]| {
        // dftlint:allow(L007, reason="deliberate swallow: the failed allreduce has already poisoned the communicator, and shared.failure() is checked right after the mix")
        let _ = shared.with(|c| c.allreduce_sum_f64(b, WirePrecision::Fp64));
    };

    // this rank's k-points (the k-group's contiguous slice; all of them
    // off grid mode) — psi is stored for those only, indexed `ik - k0`
    let (k0, k1) = pgrid.my_kpoints(kpts.len());
    // per-k state: every rank draws the identical full random subspace for
    // its ks — seeded by the *global* k index, so any grid layout starts
    // from the same wavefunctions — and keeps its owned rows
    let mut psi: Vec<Matrix<T>> = (k0..k1)
        .map(|ik| {
            let full = random_subspace::<T>(nd, base.n_states, base.seed + ik as u64);
            let mut local = Matrix::<T>::zeros(dec.n_owned(), base.n_states);
            for j in 0..base.n_states {
                let src = full.col(j);
                for (l, dst) in local.col_mut(j).iter_mut().enumerate() {
                    *dst = src[dec.owned[l] as usize];
                }
            }
            local
        })
        .collect();
    let mut filter_window: Vec<Option<(f64, f64)>> = vec![None; kpts.len()];

    let mut result_energy = TotalEnergy::default();
    let mut eigenvalues: Vec<Vec<f64>> = vec![vec![]; kpts.len()];
    let mut occupations: Vec<Vec<f64>> = vec![vec![]; kpts.len()];
    let mut mu = 0.0;
    let mut v_eff = vec![0.0; space.nnodes()];
    let mut residual_history = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut rho_out = rho_in.clone();
    let e_ii_corr = system.ion_ion_correction(space);
    let kweights: Vec<f64> = kpts.iter().map(|k| k.weight).collect();

    // ---- restart from the newest complete snapshot, if asked ----------
    // With both a `restart_from` warm-start hint and the job's own
    // `checkpoint_dir` available, whichever holds the *newest* complete
    // snapshot wins (own progress wins ties): a fresh submission reads the
    // cache entry, while a rank-loss relaunch that has already progressed
    // past it resumes from its own later checkpoints instead of repeating
    // work. A warm-start snapshot that fails to load or does not match
    // this run's dimensions degrades to a cold start — every rank reads
    // the same bytes, so the fallback decision is identical cluster-wide;
    // a `checkpoint_dir` restart failure stays fatal, since recovery
    // correctness depends on it.
    let mut start_iter = 0;
    let mut resumed_from = None;
    if cfg.restart {
        let warm_newest = cfg
            .restart_from
            .as_ref()
            .and_then(|d| checkpoint::latest_complete(d).map(|it| (d, it)));
        let own_newest = cfg
            .checkpoint_dir
            .as_ref()
            .and_then(|d| checkpoint::latest_complete(d).map(|it| (d, it)));
        let chosen = match (warm_newest, own_newest) {
            (Some((wd, wi)), Some((od, oi))) => {
                if wi > oi {
                    Some((wd, wi, true))
                } else {
                    Some((od, oi, false))
                }
            }
            (Some((wd, wi)), None) => Some((wd, wi, true)),
            (None, Some((od, oi))) => Some((od, oi, false)),
            (None, None) => None,
        };
        if let Some((dir, it, warm_hint)) = chosen {
            let loaded = match checkpoint::load::<T>(dir, it) {
                Ok(l)
                    if l.state.rho_in.len() == space.nnodes()
                        && l.psi_full.len() == kpts.len()
                        && l.psi_full[0].nrows() == nd
                        && l.psi_full[0].ncols() == base.n_states
                        && l.state.filter_windows.len() == kpts.len() =>
                {
                    Some(l)
                }
                _ if warm_hint => None,
                _ => return Err(ScfError::Checkpoint { iteration: it }),
            };
            if let Some(loaded) = loaded {
                rho_in = loaded.state.rho_in.clone();
                mu = loaded.state.mu;
                // A `restart_from` hint is a *different* problem's converged
                // state (a cache entry, or the previous geometry of a
                // relaxation): its density/subspace/windows are excellent
                // initial guesses, but its Anderson residual pairs point at
                // the OLD fixed point and measurably slow reconvergence at
                // the new one, so the mixer (and the reported residual
                // history) start fresh. Own-checkpoint resumes are the same
                // SCF continuing and restore both.
                if !warm_hint {
                    mixer.restore_history(loaded.state.mixer_history.clone());
                    residual_history = loaded.state.residual_history.clone();
                }
                filter_window = loaded.state.filter_windows.clone();
                for ik in k0..k1 {
                    let full = &loaded.psi_full[ik];
                    for j in 0..base.n_states {
                        let src = full.col(j);
                        for (l, dst) in psi[ik - k0].col_mut(j).iter_mut().enumerate() {
                            *dst = src[dec.owned[l] as usize];
                        }
                    }
                }
                start_iter = loaded.state.iteration;
                resumed_from = Some(it);
            }
        }
    }

    let profile_store = base.profile.then(Profile::new);
    let profile = profile_store.as_ref();
    let lost = |iteration: usize, cause: CommError| ScfError::RankLost {
        rank,
        iteration,
        cause,
    };

    for iter in start_iter..base.max_iter {
        iterations = iter + 1;
        if let Some(p) = profile {
            p.begin_iteration();
        }

        // ---- cooperative preemption consensus --------------------------
        // One tiny allreduce(max) per iteration, present only when a token
        // is attached (the default schedule stays bit-identical): a raise
        // observed by any rank becomes a cluster-wide decision at this
        // iteration, so every rank snapshots the same state and unwinds
        // together.
        if let Some(token) = &cfg.preempt {
            let agreed = shared
                .with(|c| c.allreduce_max_u64(u64::from(token.is_requested())))
                .map_err(|e| lost(iter, e))?;
            if agreed != 0 {
                if let Some(dir) = &cfg.checkpoint_dir {
                    let state = ReplicatedScfState {
                        iteration: iter,
                        rho_in: rho_in.clone(),
                        mu,
                        mixer_history: mixer.history().to_vec(),
                        filter_windows: filter_window.clone(),
                        residual_history: residual_history.clone(),
                    };
                    snapshot_cluster(
                        dir,
                        &state,
                        &shared,
                        &pgrid,
                        dec,
                        &psi,
                        k0,
                        kpts.len(),
                        base.n_states,
                        nd,
                        shape,
                        profile,
                    )?;
                }
                return Err(ScfError::Preempted { iteration: iter });
            }
        }

        // ---- checkpoint the top-of-iteration state ---------------------
        // Written *before* the epoch advance, so a fault-injected "kill at
        // iteration K" leaves iteration K's snapshot complete.
        if let Some(dir) = &cfg.checkpoint_dir {
            if base.checkpoint_every > 0 && iter > start_iter && iter % base.checkpoint_every == 0 {
                let state = ReplicatedScfState {
                    iteration: iter,
                    rho_in: rho_in.clone(),
                    mu,
                    mixer_history: mixer.history().to_vec(),
                    filter_windows: filter_window.clone(),
                    residual_history: residual_history.clone(),
                };
                snapshot_cluster(
                    dir,
                    &state,
                    &shared,
                    &pgrid,
                    dec,
                    &psi,
                    k0,
                    kpts.len(),
                    base.n_states,
                    nd,
                    shape,
                    profile,
                )?;
            }
        }

        // ---- fault-injection epoch: "kill rank R at iteration K" -------
        shared
            .with(|c| c.advance_epoch())
            .map_err(|e| lost(iter, e))?;
        // ---- effective potential from rho_in (replicated, no comm) -----
        let rho_charge: Vec<f64> = (0..space.nnodes())
            .map(|i| rho_ion[i] - rho_in[i])
            .collect();
        let (phi, pst) = {
            let mut scope = PhaseScope::new(profile, Phase::Ep);
            let r = solve_poisson(
                space,
                &rho_charge,
                poisson_bc_of(space),
                base.poisson_tol,
                20000,
            );
            scope.add_flops(poisson_flops(space, r.1.iterations));
            scope.add_bytes(poisson_bytes(space, r.1.iterations));
            r
        };
        assert!(pst.converged, "Poisson solve failed at SCF iter {iter}");
        {
            let _scope = PhaseScope::new(profile, Phase::Dh);
            let rho_in_field = NodalField::from_values(space, rho_in.clone());
            let xce = evaluate_xc(space, &rho_in_field, xc);
            for i in 0..space.nnodes() {
                v_eff[i] = -phi[i] + xce.vxc[i];
            }
        }

        // ---- distributed eigenproblem per owned k-point ----------------
        for ik in k0..k1 {
            let k = &kpts[ik];
            let ph = phases_for::<T>(space, k);
            // spectral bounds from the replicated serial operator: pure
            // local recomputation, bit-identical on every rank, no comm
            let (tmin, tmax) = {
                let _scope = PhaseScope::new(profile, Phase::Other);
                let h_full = KsHamiltonian::<T>::new(space, &v_eff, ph);
                lanczos_bounds(&h_full, 10, base.seed + 1000 + ik as u64)
            };
            // FP64 operator for CholGS/RR; the filter twin carries the
            // configured (possibly FP32) boundary wire
            let h = DistHamiltonian::<T>::new(&dist, &shared, &v_eff, ph, WirePrecision::Fp64);
            let h_filter = DistHamiltonian::<T>::new(&dist, &shared, &v_eff, ph, cfg.wire);
            let passes = if iter == 0 {
                base.first_iter_cf_passes
            } else {
                1
            };
            let opts = ChfesOptions {
                cheb_degree: base.cheb_degree,
                block_size: base.block_size,
                mixed_precision: base.mixed_precision,
            };
            let (mut a0, mut a) =
                filter_window[ik].unwrap_or((tmin - 1.0, tmin + 0.1 * (tmax - tmin)));
            a0 = a0.min(tmin - 1.0);
            a = a.clamp(a0 + 1e-3 * (tmax - a0), 0.9 * tmax);
            // overlap mode swaps the plain filter operator for the
            // pipelined driver (same arithmetic, look-ahead ghost posts)
            let pipelined;
            let filter = if cfg.overlap {
                pipelined = PipelinedFilter::new(&h_filter);
                CfFilter::Driver(&pipelined)
            } else {
                CfFilter::Op(&h_filter)
            };
            let mut evals = vec![];
            for _ in 0..passes {
                evals = chfes_reduced(
                    &h,
                    filter,
                    &mut psi[ik - k0],
                    (a0, a, tmax),
                    &opts,
                    profile,
                    reducer,
                );
                let top = evals[base.n_states - 1];
                let spread = (top - evals[0]).max(0.1);
                let gap = (2.0 * base.kt).max(spread / base.n_states as f64);
                a = (top + gap).min(0.9 * tmax);
                a0 = evals[0] - 1.0;
            }
            filter_window[ik] = Some((a0, a));
            eigenvalues[ik] = evals;
            // a dead peer surfaces inside the filter's ghost exchange or
            // the subspace allreduces; the poisoned communicator makes the
            // rest of the (garbage) ChFES pass finish fast — check here
            // before the garbage reaches occupations
            if let Some(e) = shared.failure() {
                return Err(lost(iter, e));
            }
        }

        // ---- cross-k-group exchange ------------------------------------
        // Occupations couple all k-points through the shared chemical
        // potential, so every rank needs every k's eigenvalues (and the
        // filter windows, so checkpoints stay fully replicated). Each
        // group's (dom 0, band 0) root contributes its ks to a k-root
        // allreduce, then broadcasts the assembled buffer into its plane.
        if shape.n_kgrp > 1 {
            let _scope = PhaseScope::new(profile, Phase::Other);
            let stride = base.n_states + 2;
            let mut buf = vec![0.0; kpts.len() * stride];
            // dftlint:allow(L006, reason="intentional: only the (dom 0, band 0) roots are members of k_roots, every member runs the same sequence, and non-roots rejoin at the group_broadcast below")
            if pgrid.dom == 0 && pgrid.band == 0 {
                for ik in k0..k1 {
                    let o = ik * stride;
                    buf[o..o + base.n_states].copy_from_slice(&eigenvalues[ik]);
                    if let Some((wa0, wa)) = filter_window[ik] {
                        buf[o + base.n_states] = wa0;
                        buf[o + base.n_states + 1] = wa;
                    }
                }
                shared
                    .with(|c| {
                        c.group_allreduce_sum_f64(&pgrid.k_roots, &mut buf, WirePrecision::Fp64)
                    })
                    .map_err(|e| lost(iter, e))?;
            }
            shared
                .with(|c| c.group_broadcast_f64(&pgrid.kgrp_group, &mut buf, WirePrecision::Fp64))
                .map_err(|e| lost(iter, e))?;
            for ik in 0..kpts.len() {
                let o = ik * stride;
                eigenvalues[ik] = buf[o..o + base.n_states].to_vec();
                filter_window[ik] = Some((buf[o + base.n_states], buf[o + base.n_states + 1]));
            }
        }

        // ---- occupations & density -------------------------------------
        let occ = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            fermi_occupations(&eigenvalues, &kweights, n_el, base.kt)
        };
        mu = occ.mu;
        occupations = occ.occupations.clone();

        {
            let mut scope = PhaseScope::new(profile, Phase::Dc);
            rho_out = vec![0.0; space.nnodes()];
            let s = space.inv_sqrt_mass();
            // each rank contributes its owned rows x its band columns x its
            // ks: the three grid axes partition the serial triple sum, so
            // the single global allreduce below counts every term exactly
            // once (the cross-k-group density sum rides the same wire)
            let (j0b, j1b) = pgrid.my_band_cols(base.n_states);
            for ik in k0..k1 {
                let w = kpts[ik].weight;
                for i in j0b..j1b {
                    let f = occupations[ik][i];
                    if f < 1e-14 {
                        continue;
                    }
                    scope.add_flops(dec.n_owned() as u64 * (T::MUL_FLOPS + 4));
                    scope.add_bytes(dec.n_owned() as u64 * std::mem::size_of::<T>() as u64);
                    let col = psi[ik - k0].col(i);
                    for (l, &v) in col.iter().enumerate() {
                        let d = dec.owned[l] as usize;
                        let amp = v.abs_sq().to_f64() * s[d] * s[d];
                        rho_out[space.node_of_dof(d)] += w * f * amp;
                    }
                }
            }
            // owned DoF rows partition the serial sum: one allreduce
            // replicates the full density on every rank
            shared
                .with(|c| c.allreduce_sum_f64(&mut rho_out, WirePrecision::Fp64))
                .map_err(|e| lost(iter, e))?;
        }

        // ---- total energy (replicated recomputation) --------------------
        let (band, rho_veff, rho_charge_out) = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            let band: f64 = (0..kpts.len())
                .map(|ik| -> f64 {
                    kpts[ik].weight
                        * eigenvalues[ik]
                            .iter()
                            .zip(&occupations[ik])
                            .map(|(&e, &f)| e * f)
                            .sum::<f64>()
                })
                .sum();
            let rho_veff: f64 = space.integrate(
                &(0..space.nnodes())
                    .map(|i| rho_out[i] * v_eff[i])
                    .collect::<Vec<_>>(),
            );
            let rho_charge_out: Vec<f64> = (0..space.nnodes())
                .map(|i| rho_ion[i] - rho_out[i])
                .collect();
            (band, rho_veff, rho_charge_out)
        };
        let kinetic = band - rho_veff;
        let (phi_out, _pst_out) = {
            let mut scope = PhaseScope::new(profile, Phase::Ep);
            let r = solve_poisson(
                space,
                &rho_charge_out,
                poisson_bc_of(space),
                base.poisson_tol,
                20000,
            );
            scope.add_flops(poisson_flops(space, r.1.iterations));
            scope.add_bytes(poisson_bytes(space, r.1.iterations));
            r
        };
        let xc_out = {
            let _scope = PhaseScope::new(profile, Phase::Dh);
            let rho_out_field = NodalField::from_values(space, rho_out.clone());
            evaluate_xc(space, &rho_out_field, xc)
        };
        let residual = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            let e_es_gauss = 0.5
                * space.integrate(
                    &(0..space.nnodes())
                        .map(|i| rho_charge_out[i] * phi_out[i])
                        .collect::<Vec<_>>(),
                );
            let electrostatic = e_es_gauss + e_ii_corr;
            let total = kinetic + electrostatic + xc_out.energy;
            let entropy_term = -base.kt * occ.entropy;
            result_energy = TotalEnergy {
                band,
                kinetic,
                electrostatic,
                xc: xc_out.energy,
                entropy_term,
                total,
                free_energy: total + entropy_term,
            };
            let diff: Vec<f64> = (0..space.nnodes())
                .map(|i| (rho_out[i] - rho_in[i]).powi(2))
                .collect();
            space.integrate(&diff).sqrt() / n_el
        };
        residual_history.push(residual);
        if base.verbose && rank == 0 {
            println!(
                "dSCF {iter:3} [{nranks}r]  E = {:+.8} Ha   resid = {residual:.3e}   mu = {mu:+.4}",
                result_energy.free_energy
            );
        }
        if residual < base.tol {
            converged = true;
            break;
        }
        {
            let _scope = PhaseScope::new(profile, Phase::Other);
            rho_in = mixer.mix_with(&rho_in, &rho_out, &reduce_gram);
        }
        if let Some(e) = shared.failure() {
            return Err(lost(iter, e));
        }
    }

    // ---- converged-state export (the cache's write side) ---------------
    // Labeled iteration 1 so a warm resume skips the first-iteration
    // multi-pass filtering: the resumed run starts from the converged
    // density, mixer history, and subspace, and typically reconverges in a
    // small handful of iterations instead of a full cold SCF.
    if converged {
        if let Some(dir) = &cfg.final_state_dir {
            let state = ReplicatedScfState {
                iteration: 1,
                rho_in: rho_out.clone(),
                mu,
                mixer_history: mixer.history().to_vec(),
                filter_windows: filter_window.clone(),
                residual_history: Vec::new(),
            };
            snapshot_cluster(
                dir,
                &state,
                &shared,
                &pgrid,
                dec,
                &psi,
                k0,
                kpts.len(),
                base.n_states,
                nd,
                shape,
                profile,
            )?;
        }
    }

    let comm_vol = comm_start.delta(&CommVolume::snapshot(&shared));
    Ok(DistScfResult {
        rank,
        nranks,
        energy: result_energy,
        eigenvalues,
        occupations,
        mu,
        density: NodalField::from_values(space, rho_out),
        v_eff,
        iterations,
        converged,
        resumed_from,
        residual_history,
        profile: profile_store.map(|p| p.finish(None)),
        comm: comm_vol,
    })
}

/// Write one complete cluster snapshot of `state` plus this rank's psi
/// shard into `dir` — shard write, cluster barrier (which doubles as the
/// failure detector), then a rank-0 `COMPLETE` marker with keep-last-2
/// pruning. Shared by the periodic cadence, cooperative preemption, and
/// the converged-state export. Band replicas hold identical psi columns,
/// so only the band-0 rank of each (domain, k-group) slot writes
/// wavefunction blocks, tagged with the global k indices they cover.
#[allow(clippy::too_many_arguments)]
fn snapshot_cluster<T: ScalarExt>(
    dir: &std::path::Path,
    state: &ReplicatedScfState,
    shared: &SharedComm<'_>,
    pgrid: &ProcessGrid,
    dec: &Decomposition,
    psi: &[Matrix<T>],
    k0: usize,
    nk: usize,
    n_states: usize,
    nd: usize,
    shape: GridShape,
    profile: Option<&Profile>,
) -> Result<(), ScfError> {
    let (rank, nranks) = shared.with(|c| (c.rank(), c.size()));
    let iter = state.iteration;
    let mut scope = PhaseScope::new(profile, Phase::Ck);
    let my_ks: Vec<usize> = (k0..k0 + psi.len()).collect();
    let (ck_ks, ck_psi): (&[usize], &[Matrix<T>]) = if pgrid.band == 0 {
        (&my_ks, psi)
    } else {
        (&[], &[])
    };
    let bytes = checkpoint::write_rank_grid(
        dir, rank, nranks, nd, state, &dec.owned, ck_psi, ck_ks, nk, n_states, shape,
    )
    .map_err(|_| ScfError::Checkpoint { iteration: iter })?;
    scope.add_bytes(bytes);
    // every shard must land before the snapshot is declared complete
    shared
        .with(|c| c.barrier())
        .map_err(|cause| ScfError::RankLost {
            rank,
            iteration: iter,
            cause,
        })?;
    if rank == 0 {
        checkpoint::finalize(dir, iter, 2).map_err(|_| ScfError::Checkpoint { iteration: iter })?;
    }
    Ok(())
}

/// A `Decomposition` accessor for callers that want the sharding of a
/// finished run (e.g. benchmarks reporting rows per rank).
pub fn decomposition_of(space: &FeSpace, rank: usize, nranks: usize) -> Decomposition {
    Decomposition::new(space, rank, nranks)
}

/// SCF iterations a run *performed*, net of the snapshot label it resumed
/// from. Saturating: a warm resume that converges immediately can report
/// `iterations <= resumed_from` (the converged-state export is labeled
/// iteration 1, and `iterations` counts from the resumed label), and the
/// accounting must floor at zero instead of wrapping.
pub fn performed_iterations(iterations: usize, resumed_from: Option<usize>) -> usize {
    iterations.saturating_sub(resumed_from.unwrap_or(0))
}
