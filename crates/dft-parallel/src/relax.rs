//! Distributed FIRE relaxation and Born-Oppenheimer MD with wavefunction
//! extrapolation.
//!
//! The geometry loop runs *replicated*: every rank holds the full atom
//! set and the full [`FireState`], feeds them the bit-identical forces
//! from [`distributed_forces`](crate::forces::distributed_forces), and
//! therefore moves the atoms identically with zero extra communication —
//! the same replicate-the-cheap-state pattern the SCF uses for nodal
//! fields.
//!
//! Between geometry steps the SCF is *warm-started* from the previous
//! step's converged state — density, Anderson mixer history, filter
//! windows, and wavefunction shards — via the existing checkpoint
//! machinery (the format's second customer after fault recovery): each
//! step exports its converged state with `final_state_dir` into a shared
//! `relax-warm` directory, and the next step reads it back with
//! `restart_from`. For the small moves of a relaxation the previous
//! subspace is an excellent initial guess (zeroth-order wavefunction
//! extrapolation), so warm steps skip the first-iteration multi-pass
//! filtering and reconverge in a fraction of a cold SCF's iterations.
//!
//! The driver itself is preemptible and fault-recoverable: after each
//! applied move, rank 0 persists the integrator state (positions,
//! velocities, adaptive knobs, trajectory) to a checksummed `relax_state`
//! file next to the snapshots, atomically. A relaunch with `restart` set
//! reloads it, resumes at the interrupted step, and picks up that step's
//! own preemption/periodic SCF snapshots — so a preempted 300-step
//! relaxation loses at most the SCF iterations since the last snapshot.

use crate::forces::{distributed_forces, DistForceError};
use crate::grid::GridShape;
use crate::scf::{distributed_scf, performed_iterations, DistScfConfig, DistScfResult, ScfError};
use dft_core::forces::{max_force, ForceError};
use dft_core::relax::{FireState, RelaxConfig};
use dft_core::scf::KPoint;
use dft_core::system::AtomicSystem;
use dft_core::xc::XcFunctional;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{CommError, ThreadComm};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Why a distributed relaxation (or MD run) stopped early.
#[derive(Clone, Debug)]
pub enum RelaxError {
    /// An SCF step failed or was preempted; `ScfError::Preempted` is the
    /// cooperative-stop path — the relax state on disk resumes the run.
    Scf(ScfError),
    /// A force evaluation failed (diverged force Poisson solve).
    Force(ForceError),
    /// The force reduction lost a peer outside the SCF.
    Comm(CommError),
}

impl std::fmt::Display for RelaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelaxError::Scf(e) => write!(f, "relaxation SCF failed: {e}"),
            RelaxError::Force(e) => write!(f, "relaxation force evaluation failed: {e}"),
            RelaxError::Comm(e) => write!(f, "relaxation communication failed: {e}"),
        }
    }
}

impl std::error::Error for RelaxError {}

impl From<ScfError> for RelaxError {
    fn from(e: ScfError) -> Self {
        RelaxError::Scf(e)
    }
}

impl From<DistForceError> for RelaxError {
    fn from(e: DistForceError) -> Self {
        match e {
            DistForceError::Force(fe) => RelaxError::Force(fe),
            DistForceError::Comm(ce) => RelaxError::Comm(ce),
        }
    }
}

/// Distributed relaxation knobs on top of the serial FIRE parameters.
#[derive(Clone, Debug)]
pub struct DistRelaxConfig {
    /// FIRE parameters (identical semantics to the serial driver).
    pub fire: RelaxConfig,
    /// Warm-start each step's SCF from the previous step's converged
    /// state (density + mixer history + psi shards). Requires a
    /// `checkpoint_dir` on the SCF config to hold the snapshots; without
    /// one every step runs cold. `false` forces cold steps (the
    /// benchmark's control arm).
    pub warm_start: bool,
}

impl Default for DistRelaxConfig {
    fn default() -> Self {
        Self {
            fire: RelaxConfig::default(),
            warm_start: true,
        }
    }
}

/// One geometry step's record in a distributed relaxation trajectory.
#[derive(Clone, Copy, Debug)]
pub struct RelaxStepRecord {
    /// Free energy at this geometry (replicated).
    pub free_energy: f64,
    /// Largest force component at this geometry.
    pub fmax: f64,
    /// SCF iterations this step's electronic solve *performed* (net of
    /// the snapshot label it warm-resumed from) — the quantity the
    /// warm-vs-cold benchmark compares.
    pub scf_iterations: usize,
    /// Whether the step's SCF actually resumed from a warm snapshot.
    pub warm_started: bool,
}

/// Outcome of a distributed relaxation on one rank. Everything except
/// `scf` (whose profile/comm members are per-rank) is replicated.
pub struct DistRelaxResult {
    /// Relaxed system.
    pub system: AtomicSystem,
    /// The final geometry's SCF result.
    pub scf: DistScfResult,
    /// Per-evaluation records, including the final post-move evaluation.
    pub trajectory: Vec<RelaxStepRecord>,
    /// Whether the force tolerance was reached.
    pub converged: bool,
    /// The geometry step this run resumed from (`None` = fresh start).
    pub resumed_step: Option<usize>,
}

/// Outcome of a distributed BO-MD run on one rank.
pub struct DistMdResult {
    /// Final system (positions after the last step).
    pub system: AtomicSystem,
    /// The final geometry's SCF result.
    pub scf: DistScfResult,
    /// Per-evaluation records.
    pub trajectory: Vec<MdStepRecord>,
}

/// Velocity-Verlet BO-MD knobs (unit masses, zero initial velocities).
#[derive(Clone, Debug)]
pub struct MdConfig {
    /// Number of MD steps.
    pub steps: usize,
    /// Time step (atomic units).
    pub dt: f64,
    /// Warm-start each step's SCF from the previous step's state.
    pub warm_start: bool,
}

impl Default for MdConfig {
    fn default() -> Self {
        Self {
            steps: 5,
            dt: 0.5,
            warm_start: true,
        }
    }
}

/// One MD step's record.
#[derive(Clone, Copy, Debug)]
pub struct MdStepRecord {
    /// Potential (free) energy at this geometry.
    pub free_energy: f64,
    /// Kinetic energy of the (unit-mass) ions.
    pub kinetic: f64,
    /// Conserved-ish total: potential + kinetic.
    pub total: f64,
    /// Largest force component.
    pub fmax: f64,
    /// SCF iterations this step's electronic solve took.
    pub scf_iterations: usize,
    /// Whether the step's SCF resumed from a warm snapshot.
    pub warm_started: bool,
}

// ---- relax-state persistence -------------------------------------------
// A tiny checksummed binary (same conventions as `checkpoint`: magic,
// version, FNV-1a trailer, atomic tmp+rename) holding the geometry-loop
// state between SCF snapshots. Rank 0 writes it after every applied move;
// any later relaunch reads it back identically on every rank, so the
// resume decision needs no communication. A missing or corrupt file
// degrades to a fresh start — it is an optimization, the physics does not
// depend on it.

const RELAX_MAGIC: &[u8; 8] = b"DFTRELX1";

struct RelaxState {
    step: usize,
    positions: Vec<[f64; 3]>,
    fire: FireState,
    trajectory: Vec<RelaxStepRecord>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn state_path(root: &Path) -> PathBuf {
    root.join("relax_state.v1")
}

fn write_relax_state(root: &Path, st: &RelaxState) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(RELAX_MAGIC);
    push_u64(&mut buf, st.step as u64);
    push_u64(&mut buf, st.positions.len() as u64);
    for p in &st.positions {
        for k in 0..3 {
            push_f64(&mut buf, p[k]);
        }
    }
    push_f64(&mut buf, st.fire.dt);
    push_f64(&mut buf, st.fire.alpha);
    push_u64(&mut buf, st.fire.n_pos as u64);
    for v in &st.fire.v {
        for k in 0..3 {
            push_f64(&mut buf, v[k]);
        }
    }
    push_u64(&mut buf, st.trajectory.len() as u64);
    for r in &st.trajectory {
        push_f64(&mut buf, r.free_energy);
        push_f64(&mut buf, r.fmax);
        push_u64(&mut buf, r.scf_iterations as u64);
        push_u64(&mut buf, u64::from(r.warm_started));
    }
    let ck = fnv1a(&buf);
    push_u64(&mut buf, ck);
    fs::create_dir_all(root)?;
    let tmp = root.join("relax_state.v1.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, state_path(root))
}

/// Byte-cursor reader; any structural problem returns `None` (degrade to
/// fresh start), mirroring the warm-start hint semantics.
struct Cur<'a>(&'a [u8], usize);

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.0.get(self.1..self.1 + n)?;
        self.1 += n;
        Some(s)
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

fn load_relax_state(root: &Path, n_atoms: usize) -> Option<RelaxState> {
    let bytes = fs::read(state_path(root)).ok()?;
    if bytes.len() < RELAX_MAGIC.len() + 8 {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().ok()?);
    if fnv1a(body) != stored {
        return None;
    }
    let mut c = Cur(body, 0);
    if c.take(8)? != RELAX_MAGIC {
        return None;
    }
    let step = c.u64()? as usize;
    let n = c.u64()? as usize;
    if n != n_atoms {
        return None;
    }
    let mut positions = vec![[0.0; 3]; n];
    for p in positions.iter_mut() {
        for k in 0..3 {
            p[k] = c.f64()?;
        }
    }
    let dt = c.f64()?;
    let alpha = c.f64()?;
    let n_pos = c.u64()? as usize;
    let mut v = vec![[0.0; 3]; n];
    for vi in v.iter_mut() {
        for k in 0..3 {
            vi[k] = c.f64()?;
        }
    }
    let n_rec = c.u64()? as usize;
    if n_rec > step + 1 {
        return None;
    }
    let mut trajectory = Vec::with_capacity(n_rec);
    for _ in 0..n_rec {
        trajectory.push(RelaxStepRecord {
            free_energy: c.f64()?,
            fmax: c.f64()?,
            scf_iterations: c.u64()? as usize,
            warm_started: c.u64()? != 0,
        });
    }
    Some(RelaxState {
        step,
        positions,
        fire: FireState {
            v,
            dt,
            alpha,
            n_pos,
        },
        trajectory,
    })
}

/// Per-step SCF config: snapshots go to this step's own directory (so a
/// preempted step resumes from *its* checkpoints, never a stale earlier
/// step's), while the warm-start hint reads — and the converged export
/// writes — the shared `relax-warm` slot. `distributed_scf`'s
/// newest-complete-snapshot-wins rule arbitrates between the two on
/// resume.
fn step_cfg(
    scf_cfg: &DistScfConfig,
    root: Option<&Path>,
    step: usize,
    warm: bool,
    first: bool,
    resume: bool,
    label: &str,
) -> DistScfConfig {
    let mut cfg = scf_cfg.clone();
    if let Some(root) = root {
        cfg.checkpoint_dir = Some(root.join(format!("{label}-step-{step:04}")));
        cfg.final_state_dir = Some(root.join("relax-warm"));
        // warm source: the trajectory's own `relax-warm` slot once it
        // exists; before that, the very first evaluation may still use
        // the caller's `restart_from` hint (e.g. a converged-state cache
        // entry for this geometry family)
        cfg.restart_from = if warm {
            Some(root.join("relax-warm"))
        } else if first {
            scf_cfg.restart_from.clone()
        } else {
            None
        };
        cfg.restart = resume || cfg.restart_from.is_some();
    } else {
        cfg.restart = false;
        cfg.restart_from = None;
        cfg.final_state_dir = None;
    }
    cfg
}

/// Best-effort pruning of a finished step's snapshot directory (its warm
/// value now lives in `relax-warm`; keeping every step's psi shards would
/// grow the job root linearly with trajectory length).
fn prune_step_dir(root: Option<&Path>, step: usize, label: &str) {
    if let Some(root) = root {
        let _ = fs::remove_dir_all(root.join(format!("{label}-step-{step:04}")));
    }
}

/// Distributed FIRE relaxation. Call from every rank of a cluster with
/// identical arguments; the returned trajectory, positions, and
/// convergence flag are replicated bit-identically.
///
/// `scf_cfg.checkpoint_dir` doubles as the relaxation root: per-step SCF
/// snapshots, the `relax-warm` warm-start slot, and the `relax_state.v1`
/// integrator state all live under it. `scf_cfg.restart` resumes an
/// interrupted relaxation from that state; `scf_cfg.preempt` preempts the
/// in-flight SCF step cooperatively (the driver surfaces
/// [`ScfError::Preempted`] after the step's snapshot and the relax state
/// are both on disk).
pub fn dist_relax(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    scf_cfg: &DistScfConfig,
    relax_cfg: &DistRelaxConfig,
    kpts: &[KPoint],
) -> Result<DistRelaxResult, RelaxError> {
    let rank = comm.rank();
    let root = scf_cfg.checkpoint_dir.clone();
    let root = root.as_deref();
    let cfg = &relax_cfg.fire;
    let n = system.atoms.len();

    let mut sys = system.clone();
    let mut fire = FireState::new(n, cfg);
    let mut trajectory: Vec<RelaxStepRecord> = Vec::new();
    let mut start_step = 0usize;
    let mut resumed_step = None;

    // resume an interrupted relaxation: every rank reads the same bytes,
    // so the decision is identical cluster-wide without communication
    if scf_cfg.restart {
        if let Some(st) = root.and_then(|r| load_relax_state(r, n)) {
            for (a, p) in sys.atoms.iter_mut().zip(&st.positions) {
                a.pos = *p;
            }
            fire = st.fire;
            trajectory = st.trajectory;
            start_step = st.step;
            resumed_step = Some(st.step);
        }
    }

    let warm_dir_has_state =
        |root: Option<&Path>| root.is_some_and(|r| r.join("relax-warm").exists());

    let evaluate = |comm: &mut ThreadComm,
                    sys: &AtomicSystem,
                    step: usize,
                    resume: bool|
     -> Result<(DistScfResult, Vec<[f64; 3]>, bool), RelaxError> {
        let warm = relax_cfg.warm_start && warm_dir_has_state(root);
        let cfg_step = step_cfg(
            scf_cfg,
            root,
            step,
            warm,
            step == start_step,
            resume,
            "fire",
        );
        let r = distributed_scf(comm, space, sys, xc, &cfg_step, kpts)?;
        let f = distributed_forces(
            comm,
            space,
            sys,
            &r.density.values,
            cfg_step.grid.or_else(GridShape::from_env),
        )?;
        let warm_started = r.resumed_from.is_some() && cfg_step.restart_from.is_some();
        Ok((r, f, warm_started))
    };

    // persist the integrator state *before* each evaluation: a
    // preemption or rank loss inside evaluate(step) then resumes at
    // exactly this step with the already-applied positions
    let persist = |rank: usize,
                   step: usize,
                   sys: &AtomicSystem,
                   fire: &FireState,
                   traj: &[RelaxStepRecord]| {
        if rank == 0 {
            if let Some(root) = root {
                let _ = write_relax_state(
                    root,
                    &RelaxState {
                        step,
                        positions: sys.atoms.iter().map(|a| a.pos).collect(),
                        fire: fire.clone(),
                        trajectory: traj.to_vec(),
                    },
                );
            }
        }
    };

    persist(rank, start_step, &sys, &fire, &trajectory);
    let (mut r, mut f, mut warm) = evaluate(
        comm,
        &sys,
        start_step,
        scf_cfg.restart && resumed_step.is_some(),
    )?;
    let mut converged = false;
    let mut step = start_step;
    loop {
        // every evaluation — including the one after the final allowed
        // move — gets its trajectory record and its convergence verdict
        // here, so a run converging exactly at `max_steps` reports it
        let fmax = max_force(&f);
        trajectory.push(RelaxStepRecord {
            free_energy: r.energy.free_energy,
            fmax,
            scf_iterations: performed_iterations(r.iterations, r.resumed_from),
            warm_started: warm,
        });
        if fmax < cfg.force_tol {
            converged = true;
            break;
        }
        if step >= start_step.max(cfg.max_steps) {
            break;
        }
        let dx = fire.step(&f, cfg);
        for i in 0..n {
            for k in 0..3 {
                sys.atoms[i].pos[k] += dx[i][k];
            }
        }
        let prev = step;
        step += 1;
        persist(rank, step, &sys, &fire, &trajectory);
        let out = evaluate(comm, &sys, step, false)?;
        if rank == 0 {
            prune_step_dir(root, prev, "fire");
        }
        (r, f, warm) = out;
    }
    persist(rank, step, &sys, &fire, &trajectory);
    Ok(DistRelaxResult {
        system: sys,
        scf: r,
        trajectory,
        converged,
        resumed_step,
    })
}

/// Minimal distributed Born-Oppenheimer MD: velocity-Verlet with unit
/// masses and zero initial velocities, each step's SCF warm-started from
/// the previous step's converged state. Replicated like [`dist_relax`];
/// no mid-run persistence (MD runs are short and restartable from their
/// initial conditions).
pub fn dist_md(
    comm: &mut ThreadComm,
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    scf_cfg: &DistScfConfig,
    md_cfg: &MdConfig,
    kpts: &[KPoint],
) -> Result<DistMdResult, RelaxError> {
    let rank = comm.rank();
    let root = scf_cfg.checkpoint_dir.clone();
    let root = root.as_deref();
    let n = system.atoms.len();
    let mut sys = system.clone();
    let mut v = vec![[0.0f64; 3]; n];
    let dt = md_cfg.dt;
    let mut trajectory = Vec::with_capacity(md_cfg.steps + 1);

    let warm_dir_has_state =
        |root: Option<&Path>| root.is_some_and(|r| r.join("relax-warm").exists());
    let evaluate = |comm: &mut ThreadComm,
                    sys: &AtomicSystem,
                    step: usize|
     -> Result<(DistScfResult, Vec<[f64; 3]>, bool), RelaxError> {
        let warm = md_cfg.warm_start && warm_dir_has_state(root);
        let cfg_step = step_cfg(scf_cfg, root, step, warm, step == 0, false, "md");
        let r = distributed_scf(comm, space, sys, xc, &cfg_step, kpts)?;
        let f = distributed_forces(
            comm,
            space,
            sys,
            &r.density.values,
            cfg_step.grid.or_else(GridShape::from_env),
        )?;
        let warm_started = r.resumed_from.is_some() && cfg_step.restart_from.is_some();
        Ok((r, f, warm_started))
    };

    let (mut r, mut f, mut warm) = evaluate(comm, &sys, 0)?;
    for step in 0..md_cfg.steps {
        let kinetic: f64 = 0.5
            * v.iter()
                .map(|vi| vi.iter().map(|&c| c * c).sum::<f64>())
                .sum::<f64>();
        trajectory.push(MdStepRecord {
            free_energy: r.energy.free_energy,
            kinetic,
            total: r.energy.free_energy + kinetic,
            fmax: max_force(&f),
            scf_iterations: performed_iterations(r.iterations, r.resumed_from),
            warm_started: warm,
        });
        // velocity Verlet: half-kick, drift, re-evaluate, half-kick
        for i in 0..n {
            for k in 0..3 {
                v[i][k] += 0.5 * dt * f[i][k];
                sys.atoms[i].pos[k] += dt * v[i][k];
            }
        }
        let out = evaluate(comm, &sys, step + 1)?;
        if rank == 0 {
            prune_step_dir(root, step, "md");
        }
        (r, f, warm) = out;
        for i in 0..n {
            for k in 0..3 {
                v[i][k] += 0.5 * dt * f[i][k];
            }
        }
    }
    let kinetic: f64 = 0.5
        * v.iter()
            .map(|vi| vi.iter().map(|&c| c * c).sum::<f64>())
            .sum::<f64>();
    trajectory.push(MdStepRecord {
        free_energy: r.energy.free_energy,
        kinetic,
        total: r.energy.free_energy + kinetic,
        fmax: max_force(&f),
        scf_iterations: r.iterations,
        warm_started: warm,
    });
    Ok(DistMdResult {
        system: sys,
        scf: r,
        trajectory,
    })
}
