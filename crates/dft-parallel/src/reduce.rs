//! Cross-rank subspace reductions and communication-volume reporting.
//!
//! [`ClusterReducer`] plugs the threaded communicator into
//! [`dft_core::chfes_reduced`]'s [`SubspaceReducer`] hooks: the `N x N`
//! overlap / projected-Hamiltonian matrices computed from each rank's owned
//! wavefunction rows are summed with `allreduce_sum_f64`, which gathers in
//! rank order and broadcasts identical bytes — so every rank factorizes and
//! diagonalizes the *same* matrix, bit for bit. Its reductions always
//! travel in FP64.
//!
//! [`GridReducer`] is the 2D-process-grid generalization (Sec. 5.4.2):
//! each rank computes only its band-column block of every subspace matrix,
//! the block is summed along the *grid row* (domain sub-group) and the full
//! matrix reassembled by an allgather along the *grid column* (band
//! sub-group) — two small sub-communicator collectives instead of one
//! all-rank reduce over the full `N x N`. Optionally the grid-row leg
//! carries the off-band-diagonal rows in FP32 (the paper's mixed-precision
//! subspace scheme); the band-diagonal square every Cholesky pivot lives in
//! stays FP64, and [`SubspaceReducer::lossy_wire`] makes `chfes_reduced`
//! run its FP64 orthonormality cleanup pass afterwards.

use crate::grid::ProcessGrid;
use crate::operator::{SharedComm, WireScalar};
use dft_core::chebyshev::SubspaceReducer;
use dft_hpc::comm::WirePrecision;
use dft_linalg::matrix::Matrix;

/// [`SubspaceReducer`] over a [`SharedComm`]: allreduce-sum in FP64.
pub struct ClusterReducer<'a, 'c> {
    comm: &'a SharedComm<'c>,
}

impl<'a, 'c> ClusterReducer<'a, 'c> {
    /// Wrap a shared communicator.
    pub fn new(comm: &'a SharedComm<'c>) -> Self {
        Self { comm }
    }
}

impl<'a, 'c, T: WireScalar> SubspaceReducer<T> for ClusterReducer<'a, 'c> {
    fn reduce_matrix(&self, m: &mut Matrix<T>) {
        let n = m.as_slice().len();
        let mut buf = Vec::with_capacity(n * T::COMPONENTS);
        for &v in m.as_slice() {
            T::pack_into(v, &mut buf);
        }
        let reduced = self
            .comm
            .with(|c| c.allreduce_sum_f64(&mut buf, WirePrecision::Fp64));
        if reduced.is_err() {
            // comm failure (already recorded in the poisoned communicator):
            // substitute the identity so the caller's Cholesky/eigensolve
            // stays finite until the SCF loop observes the failure
            for j in 0..m.ncols() {
                for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                    *v = if i == j { T::ONE } else { T::ZERO };
                }
            }
            return;
        }
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = T::unpack_at(&buf, i);
        }
    }

    fn reduce_f64(&self, v: &mut [f64]) {
        if self
            .comm
            .with(|c| c.allreduce_sum_f64(v, WirePrecision::Fp64))
            .is_err()
        {
            // safe substitute (norms of 1.0) on a poisoned communicator
            v.fill(1.0);
        }
    }

    fn is_distributed(&self) -> bool {
        true
    }
}

/// [`SubspaceReducer`] over a process grid: band-column-blocked compute,
/// grid-row (domain) reduction, grid-column (band) reassembly. K-groups
/// never meet here — each group reduces its own k-points' subspace
/// matrices over its own plane.
pub struct GridReducer<'a, 'c> {
    comm: &'a SharedComm<'c>,
    grid: ProcessGrid,
    /// Ship off-band-diagonal rows of the grid-row reduction in FP32.
    subspace_fp32: bool,
}

impl<'a, 'c> GridReducer<'a, 'c> {
    /// Wrap a shared communicator and this rank's grid view.
    pub fn new(comm: &'a SharedComm<'c>, grid: &ProcessGrid, subspace_fp32: bool) -> Self {
        Self {
            comm,
            grid: grid.clone(),
            subspace_fp32,
        }
    }

    /// On a comm failure (already recorded in the poisoned communicator)
    /// substitute the identity so the caller's Cholesky/eigensolve stays
    /// finite until the SCF loop observes the failure.
    fn identity_substitute<T: WireScalar>(m: &mut Matrix<T>) {
        for j in 0..m.ncols() {
            for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                *v = if i == j { T::ONE } else { T::ZERO };
            }
        }
    }

    /// Sum this rank's `[j0, j1)` column block over the grid row and
    /// reassemble the full matrix along the grid column. `lossy` selects
    /// the FP32 off-diagonal wire (the band-diagonal square `[j0, j1) x
    /// [j0, j1)` always travels FP64 — Cholesky pivots live there).
    fn reduce_blocked<T: WireScalar>(&self, m: &mut Matrix<T>, lossy: bool) -> Result<(), ()> {
        let n = m.ncols();
        assert_eq!(m.nrows(), n, "subspace matrices are square");
        let (j0, j1) = self.grid.my_band_cols(n);
        let bw = j1 - j0;

        // grid-row reduction of the owned block, split by wire precision:
        // rows [j0, j1) of the block (the band-diagonal square) in FP64,
        // the rest in FP32 when lossy
        let mut diag = Vec::with_capacity(bw * bw * T::COMPONENTS);
        let mut off = Vec::with_capacity(bw * (n - bw) * T::COMPONENTS);
        for j in j0..j1 {
            let col = m.col(j);
            for (i, &v) in col.iter().enumerate() {
                if (j0..j1).contains(&i) {
                    T::pack_into(v, &mut diag);
                } else {
                    T::pack_into(v, &mut off);
                }
            }
        }
        let row = &self.grid.dom_group;
        let off_wire = if lossy {
            WirePrecision::Fp32
        } else {
            WirePrecision::Fp64
        };
        self.comm
            .with(|c| {
                c.group_allreduce_sum_f64(row, &mut diag, WirePrecision::Fp64)?;
                c.group_allreduce_sum_f64(row, &mut off, off_wire)
            })
            .map_err(|_| ())?;

        // re-interleave the reduced block into one column-major buffer for
        // the grid-column allgather
        let mut mine = Vec::with_capacity(bw * n * T::COMPONENTS);
        let (mut di, mut oi) = (0, 0);
        for _j in j0..j1 {
            for i in 0..n {
                if (j0..j1).contains(&i) {
                    mine.extend_from_slice(&diag[di..di + T::COMPONENTS]);
                    di += T::COMPONENTS;
                } else {
                    mine.extend_from_slice(&off[oi..oi + T::COMPONENTS]);
                    oi += T::COMPONENTS;
                }
            }
        }
        let blocks = self
            .comm
            .with(|c| c.group_allgather_f64(&self.grid.band_group, &mine, WirePrecision::Fp64))
            .map_err(|_| ())?;

        // write every band slot's block: the bytes of slot `b`'s block are
        // identical on all its grid rows, so the assembled matrix is
        // bit-identical across the whole plane
        for (b, block) in blocks.iter().enumerate() {
            let (g0, g1) = ProcessGrid::band_cols_of(n, self.grid.shape.n_band, b);
            assert_eq!(block.len(), (g1 - g0) * n * T::COMPONENTS);
            for j in g0..g1 {
                for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                    *v = T::unpack_at(block, (j - g0) * n + i);
                }
            }
        }
        Ok(())
    }
}

impl<'a, 'c, T: WireScalar> SubspaceReducer<T> for GridReducer<'a, 'c> {
    fn reduce_matrix(&self, m: &mut Matrix<T>) {
        if self.reduce_blocked(m, self.subspace_fp32).is_err() {
            Self::identity_substitute(m);
        }
    }

    fn reduce_matrix_exact(&self, m: &mut Matrix<T>) {
        if self.reduce_blocked(m, false).is_err() {
            Self::identity_substitute(m);
        }
    }

    fn reduce_f64(&self, v: &mut [f64]) {
        // wavefunction rows are sharded over the domain axis only (band and
        // k replicas hold the same rows), so scalar sums reduce over the
        // grid row alone — and in member order, so every band replica gets
        // the same bits
        if self
            .comm
            .with(|c| c.group_allreduce_sum_f64(&self.grid.dom_group, v, WirePrecision::Fp64))
            .is_err()
        {
            v.fill(1.0);
        }
    }

    fn is_distributed(&self) -> bool {
        true
    }

    fn band_cols(&self, n: usize) -> (usize, usize) {
        self.grid.my_band_cols(n)
    }

    fn assemble_cols(&self, m: &mut Matrix<T>) {
        let n = m.ncols();
        let (j0, j1) = self.grid.my_band_cols(n);
        if self.grid.shape.n_band == 1 {
            return;
        }
        let nr = m.nrows();
        let mut mine = Vec::with_capacity((j1 - j0) * nr * T::COMPONENTS);
        for j in j0..j1 {
            for &v in m.col(j) {
                T::pack_into(v, &mut mine);
            }
        }
        let blocks = match self
            .comm
            .with(|c| c.group_allgather_f64(&self.grid.band_group, &mine, WirePrecision::Fp64))
        {
            Ok(b) => b,
            // poisoned communicator: leave the block as computed (the SCF
            // loop observes the failure right after the phase)
            Err(_) => return,
        };
        for (b, block) in blocks.iter().enumerate() {
            let (g0, g1) = ProcessGrid::band_cols_of(n, self.grid.shape.n_band, b);
            assert_eq!(block.len(), (g1 - g0) * nr * T::COMPONENTS);
            for j in g0..g1 {
                for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                    *v = T::unpack_at(block, (j - g0) * nr + i);
                }
            }
        }
    }

    fn lossy_wire(&self) -> bool {
        self.subspace_fp32
    }
}

/// Communication volume from [`CommStats`](dft_hpc::CommStats) snapshots.
/// [`run_cluster`](dft_hpc::run_cluster) shares one counter set across all
/// ranks, so a snapshot reads *cluster-wide* totals; the difference of two
/// snapshots brackets a phase (up to traffic from ranks still in flight at
/// snapshot time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommVolume {
    /// Total wire bytes sent by this rank.
    pub bytes_total: u64,
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent at FP64 wire precision.
    pub bytes_fp64: u64,
    /// Bytes sent at FP32 wire precision.
    pub bytes_fp32: u64,
}

impl CommVolume {
    /// Snapshot a communicator's counters.
    pub fn snapshot(comm: &SharedComm<'_>) -> Self {
        comm.with(|c| {
            let (bytes_total, messages, bytes_fp64, bytes_fp32) = c.stats().snapshot();
            Self {
                bytes_total,
                messages,
                bytes_fp64,
                bytes_fp32,
            }
        })
    }

    /// Read a [`CommStats`](dft_hpc::CommStats) directly (e.g. the handle
    /// [`run_cluster`](dft_hpc::run_cluster) returns after the run, which
    /// holds the authoritative cluster totals).
    pub fn from_stats(stats: &dft_hpc::CommStats) -> Self {
        let (bytes_total, messages, bytes_fp64, bytes_fp32) = stats.snapshot();
        Self {
            bytes_total,
            messages,
            bytes_fp64,
            bytes_fp32,
        }
    }

    /// Volume accrued between two snapshots (`later - self`).
    pub fn delta(&self, later: &CommVolume) -> CommVolume {
        CommVolume {
            bytes_total: later.bytes_total - self.bytes_total,
            messages: later.messages - self.messages,
            bytes_fp64: later.bytes_fp64 - self.bytes_fp64,
            bytes_fp32: later.bytes_fp32 - self.bytes_fp32,
        }
    }
}
