//! Cross-rank subspace reductions and communication-volume reporting.
//!
//! [`ClusterReducer`] plugs the threaded communicator into
//! [`dft_core::chfes_reduced`]'s [`SubspaceReducer`] hooks: the `N x N`
//! overlap / projected-Hamiltonian matrices computed from each rank's owned
//! wavefunction rows are summed with `allreduce_sum_f64`, which gathers in
//! rank order and broadcasts identical bytes — so every rank factorizes and
//! diagonalizes the *same* matrix, bit for bit. Reductions always travel in
//! FP64: the paper's FP32 trick applies only to the boundary ghost exchange,
//! never to the subspace algebra that controls the final accuracy.

use crate::operator::{SharedComm, WireScalar};
use dft_core::chebyshev::SubspaceReducer;
use dft_hpc::comm::WirePrecision;
use dft_linalg::matrix::Matrix;

/// [`SubspaceReducer`] over a [`SharedComm`]: allreduce-sum in FP64.
pub struct ClusterReducer<'a, 'c> {
    comm: &'a SharedComm<'c>,
}

impl<'a, 'c> ClusterReducer<'a, 'c> {
    /// Wrap a shared communicator.
    pub fn new(comm: &'a SharedComm<'c>) -> Self {
        Self { comm }
    }
}

impl<'a, 'c, T: WireScalar> SubspaceReducer<T> for ClusterReducer<'a, 'c> {
    fn reduce_matrix(&self, m: &mut Matrix<T>) {
        let n = m.as_slice().len();
        let mut buf = Vec::with_capacity(n * T::COMPONENTS);
        for &v in m.as_slice() {
            T::pack_into(v, &mut buf);
        }
        let reduced = self
            .comm
            .with(|c| c.allreduce_sum_f64(&mut buf, WirePrecision::Fp64));
        if reduced.is_err() {
            // comm failure (already recorded in the poisoned communicator):
            // substitute the identity so the caller's Cholesky/eigensolve
            // stays finite until the SCF loop observes the failure
            for j in 0..m.ncols() {
                for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                    *v = if i == j { T::ONE } else { T::ZERO };
                }
            }
            return;
        }
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = T::unpack_at(&buf, i);
        }
    }

    fn reduce_f64(&self, v: &mut [f64]) {
        if self
            .comm
            .with(|c| c.allreduce_sum_f64(v, WirePrecision::Fp64))
            .is_err()
        {
            // safe substitute (norms of 1.0) on a poisoned communicator
            v.fill(1.0);
        }
    }

    fn is_distributed(&self) -> bool {
        true
    }
}

/// Communication volume from [`CommStats`](dft_hpc::CommStats) snapshots.
/// [`run_cluster`](dft_hpc::run_cluster) shares one counter set across all
/// ranks, so a snapshot reads *cluster-wide* totals; the difference of two
/// snapshots brackets a phase (up to traffic from ranks still in flight at
/// snapshot time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommVolume {
    /// Total wire bytes sent by this rank.
    pub bytes_total: u64,
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent at FP64 wire precision.
    pub bytes_fp64: u64,
    /// Bytes sent at FP32 wire precision.
    pub bytes_fp32: u64,
}

impl CommVolume {
    /// Snapshot a communicator's counters.
    pub fn snapshot(comm: &SharedComm<'_>) -> Self {
        comm.with(|c| {
            let (bytes_total, messages, bytes_fp64, bytes_fp32) = c.stats().snapshot();
            Self {
                bytes_total,
                messages,
                bytes_fp64,
                bytes_fp32,
            }
        })
    }

    /// Read a [`CommStats`](dft_hpc::CommStats) directly (e.g. the handle
    /// [`run_cluster`](dft_hpc::run_cluster) returns after the run, which
    /// holds the authoritative cluster totals).
    pub fn from_stats(stats: &dft_hpc::CommStats) -> Self {
        let (bytes_total, messages, bytes_fp64, bytes_fp32) = stats.snapshot();
        Self {
            bytes_total,
            messages,
            bytes_fp64,
            bytes_fp32,
        }
    }

    /// Volume accrued between two snapshots (`later - self`).
    pub fn delta(&self, later: &CommVolume) -> CommVolume {
        CommVolume {
            bytes_total: later.bytes_total - self.bytes_total,
            messages: later.messages - self.messages,
            bytes_fp64: later.bytes_fp64 - self.bytes_fp64,
            bytes_fp32: later.bytes_fp32 - self.bytes_fp32,
        }
    }
}
