//! Oracle tests for the distributed solver: every distributed kernel is
//! checked against its serial counterpart on the same golden systems as
//! `dft-fem/tests/golden_stiffness.rs` (periodic, Bloch-phase, Dirichlet),
//! plus run-to-run bit-determinism and SCF energy parity.

use dft_core::chebyshev::{chebyshev_filter, lanczos_bounds};
use dft_core::hamiltonian::KsHamiltonian;
use dft_core::scf::{scf, KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{run_cluster, WirePrecision};
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar, C64};
use dft_parallel::{distributed_scf, DistScfConfig, DistSpace, SharedComm, WireScalar};

/// Restrict the rows of a replicated full-DoF block to a rank's owned rows.
fn restrict_rows<T: Scalar>(dist: &DistSpace<'_>, full: &Matrix<T>) -> Matrix<T> {
    let mut local = Matrix::<T>::zeros(dist.dec.n_owned(), full.ncols());
    for j in 0..full.ncols() {
        let src = full.col(j);
        for (l, dst) in local.col_mut(j).iter_mut().enumerate() {
            *dst = src[dist.dec.owned[l] as usize];
        }
    }
    local
}

/// Max |y_local - y_ref[owned rows]| over all owned rows and columns.
fn max_err_vs_owned<T: Scalar>(dist: &DistSpace<'_>, local: &Matrix<T>, full: &Matrix<T>) -> f64 {
    let mut err: f64 = 0.0;
    for j in 0..full.ncols() {
        let (lc, fc) = (local.col(j), full.col(j));
        for (l, &v) in lc.iter().enumerate() {
            let d = dist.dec.owned[l] as usize;
            err = err.max((v - fc[d]).abs_sq().to_f64().sqrt());
        }
    }
    err
}

/// Run the distributed stiffness apply at `nranks` and compare every rank's
/// owned rows against the serial `Y = K X`.
fn check_apply_oracle<T: WireScalar>(
    space: &FeSpace,
    x: &Matrix<T>,
    phases: [T; 3],
    nranks: usize,
) {
    let mut y_ref = Matrix::<T>::zeros(x.nrows(), x.ncols());
    space.apply_stiffness(x, &mut y_ref, phases);
    let (errs, _) = run_cluster(nranks, |comm| {
        let dist = DistSpace::new(space, comm.rank(), comm.size());
        let shared = SharedComm::new(comm);
        let x_local = restrict_rows(&dist, x);
        let mut y_local = Matrix::<T>::zeros(dist.dec.n_owned(), x.ncols());
        dist.apply_stiffness(&shared, &x_local, &mut y_local, phases, WirePrecision::Fp64)
            .expect("apply");
        max_err_vs_owned(&dist, &y_local, &y_ref)
    });
    for (r, e) in errs.iter().enumerate() {
        assert!(e <= &1e-12, "rank {r}/{nranks}: apply error {e:.3e}");
    }
}

#[test]
fn distributed_apply_matches_serial_periodic() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let x = Matrix::<f64>::from_fn(space.ndofs(), 2, |i, j| {
        ((i * 7 + j * 29) as f64 * 0.37).sin()
    });
    for nranks in [2, 4] {
        check_apply_oracle(&space, &x, [1.0; 3], nranks);
    }
}

#[test]
fn distributed_apply_matches_serial_bloch() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let phases = [C64::cis(0.7), C64::cis(-0.3), C64::ONE];
    let x = Matrix::<C64>::from_fn(space.ndofs(), 2, |i, j| {
        C64::new(
            ((i * 5 + j * 3) as f64 * 0.3).sin(),
            ((i * 11 + j) as f64 * 0.2).cos(),
        )
    });
    for nranks in [2, 4] {
        check_apply_oracle(&space, &x, phases, nranks);
    }
}

#[test]
fn distributed_apply_matches_serial_dirichlet() {
    let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
    let x = Matrix::<f64>::from_fn(space.ndofs(), 1, |i, _| ((i * 13) as f64 * 0.19).cos());
    for nranks in [2, 4] {
        check_apply_oracle(&space, &x, [1.0; 3], nranks);
    }
}

#[test]
fn distributed_chebyshev_filter_matches_serial() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let v_eff: Vec<f64> = (0..space.nnodes())
        .map(|i| 0.3 * (i as f64 * 0.05).sin())
        .collect();
    let h_ref = KsHamiltonian::<f64>::new(&space, &v_eff, [1.0; 3]);
    let (tmin, tmax) = lanczos_bounds(&h_ref, 10, 7);
    let (m, a, b, a0) = (8, tmin + 0.2 * (tmax - tmin), tmax, tmin - 1.0);

    let mut x_ref = Matrix::<f64>::from_fn(space.ndofs(), 3, |i, j| {
        ((i * 3 + j * 17) as f64 * 0.23).sin()
    });
    let x0 = x_ref.clone();
    chebyshev_filter(&h_ref, &mut x_ref, m, a, b, a0);

    for nranks in [2, 4] {
        let (errs, _) = run_cluster(nranks, |comm| {
            let dist = DistSpace::new(&space, comm.rank(), comm.size());
            let shared = SharedComm::new(comm);
            let h = dft_parallel::DistHamiltonian::<f64>::new(
                &dist,
                &shared,
                &v_eff,
                [1.0; 3],
                WirePrecision::Fp64,
            );
            let mut x_local = restrict_rows(&dist, &x0);
            chebyshev_filter(&h, &mut x_local, m, a, b, a0);
            max_err_vs_owned(&dist, &x_local, &x_ref)
        });
        for (r, e) in errs.iter().enumerate() {
            assert!(e <= &1e-12, "rank {r}/{nranks}: filter error {e:.3e}");
        }
    }
}

// ---------------------------------------------------------------------------
// SCF-level parity and determinism
// ---------------------------------------------------------------------------

fn parity_system() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

fn parity_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

#[test]
fn distributed_scf_matches_serial_energy() {
    let (space, sys) = parity_system();
    let cfg = parity_cfg();
    let r_ser = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
    assert!(r_ser.converged);
    let dcfg = DistScfConfig::new(cfg).with_wire(WirePrecision::Fp64);
    for nranks in [2, 4] {
        let (results, _) = run_cluster(nranks, |comm| {
            distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        for r in &results {
            assert!(r.converged, "rank {} of {nranks} did not converge", r.rank);
            let d = (r.energy.free_energy - r_ser.energy.free_energy).abs();
            assert!(
                d <= 1e-10,
                "{nranks}-rank energy {} vs serial {} (|d| = {d:.3e})",
                r.energy.free_energy,
                r_ser.energy.free_energy
            );
            assert!((r.density.integrate(&space) - 2.0).abs() < 1e-6);
        }
        // replicated quantities agree bitwise across the ranks of one run
        for r in &results[1..] {
            assert_eq!(
                r.energy.free_energy.to_bits(),
                results[0].energy.free_energy.to_bits()
            );
            assert_eq!(r.eigenvalues, results[0].eigenvalues);
        }
    }
}

#[test]
fn identical_runs_are_bit_identical_at_four_ranks() {
    let (space, sys) = parity_system();
    let dcfg = DistScfConfig::new(parity_cfg()).with_wire(WirePrecision::Fp64);
    let run = || {
        let (results, _) = run_cluster(4, |comm| {
            distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        results
    };
    let (a, b) = (run(), run());
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(
            ra.energy.free_energy.to_bits(),
            rb.energy.free_energy.to_bits(),
            "rank {} energies differ between identical runs",
            ra.rank
        );
        assert_eq!(ra.energy.total.to_bits(), rb.energy.total.to_bits());
        assert_eq!(ra.eigenvalues, rb.eigenvalues);
        assert_eq!(ra.residual_history, rb.residual_history);
        assert_eq!(ra.iterations, rb.iterations);
    }
}

#[test]
fn fp32_wire_matches_fp64_energy_and_halves_boundary_bytes() {
    let (space, sys) = parity_system();
    let base = parity_cfg();
    let mut volumes = Vec::new();
    let mut energies = Vec::new();
    for wire in [WirePrecision::Fp64, WirePrecision::Fp32] {
        let dcfg = DistScfConfig::new(base.clone()).with_wire(wire);
        let (results, stats) = run_cluster(2, |comm| {
            distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        assert!(results.iter().all(|r| r.converged));
        energies.push(results[0].energy.free_energy);
        volumes.push(stats.snapshot());
    }
    let d = (energies[0] - energies[1]).abs();
    assert!(
        d <= 1e-8,
        "fp64 {} vs fp32-wire {} (|d| = {d:.3e})",
        energies[0],
        energies[1]
    );
    // the fp32 run actually moved fp32 bytes, and its total volume is
    // smaller than the all-fp64 run's
    let (total64, _, _, fp32_in_64) = volumes[0];
    let (total32, _, _, fp32_in_32) = volumes[1];
    assert_eq!(fp32_in_64, 0, "fp64 run must move no fp32 bytes");
    assert!(fp32_in_32 > 0, "fp32 run moved no fp32 bytes");
    assert!(
        total32 < total64,
        "fp32 wire did not reduce volume: {total32} vs {total64}"
    );
}
