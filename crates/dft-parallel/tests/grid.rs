//! Process-grid oracle tests: SCF energies must be invariant under the
//! rank layout — 1D slab, domain x band, domain x band x k-group — match
//! the serial solver to 1e-10 Ha, and the cross-iteration ghost overlap
//! and FP32 subspace wire must behave exactly as advertised (bit-identical
//! and 1e-8-close, respectively).

use dft_core::scf::{scf, KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::run_cluster;
use dft_parallel::{distributed_scf, DistScfConfig, DistScfResult, GridShape};

fn parity_system() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

fn parity_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

/// Two k-points exercising the complex (Bloch) path and the k-group axis.
fn two_kpoints() -> Vec<KPoint> {
    vec![
        KPoint {
            frac: [0.0; 3],
            weight: 0.5,
        },
        KPoint {
            frac: [0.25, 0.0, 0.0],
            weight: 0.5,
        },
    ]
}

fn run_grid(dcfg: &DistScfConfig, nranks: usize, kpts: &[KPoint]) -> Vec<DistScfResult> {
    let (space, sys) = parity_system();
    let (results, _) = run_cluster(nranks, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, dcfg, kpts).expect("scf")
    });
    results
}

/// Γ-only, four ranks: the 4x1 slab grid and the 2x2 domain x band grid
/// both reproduce the serial free energy to 1e-10 Ha, and replicated
/// quantities agree bitwise across every rank of a run.
#[test]
fn band_grid_energies_match_serial_oracle() {
    let (space, sys) = parity_system();
    let cfg = parity_cfg();
    let r_ser = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
    assert!(r_ser.converged);
    for shape in [GridShape::new(4, 1, 1), GridShape::new(2, 2, 1)] {
        let dcfg = DistScfConfig::new(cfg.clone()).with_grid(shape);
        let results = run_grid(&dcfg, shape.nranks(), &[KPoint::gamma()]);
        for r in &results {
            assert!(r.converged, "rank {} on {shape} did not converge", r.rank);
            let d = (r.energy.free_energy - r_ser.energy.free_energy).abs();
            assert!(
                d <= 1e-10,
                "{shape} energy {} vs serial {} (|d| = {d:.3e})",
                r.energy.free_energy,
                r_ser.energy.free_energy
            );
        }
        for r in &results[1..] {
            assert_eq!(
                r.energy.free_energy.to_bits(),
                results[0].energy.free_energy.to_bits(),
                "rank {} disagrees with rank 0 on {shape}",
                r.rank
            );
            assert_eq!(r.eigenvalues, results[0].eigenvalues);
        }
    }
}

/// The full 3-axis grid: two k-points on eight ranks as 2x2x2 match the
/// serial two-k solve to 1e-10 Ha, as does the same rank count laid out as
/// a pure 8x1 slab — energies are rank-layout-invariant.
#[test]
fn three_axis_grid_matches_serial_two_kpoint_oracle() {
    let (space, sys) = parity_system();
    let cfg = parity_cfg();
    let kpts = two_kpoints();
    let r_ser = scf(&space, &sys, &Lda, &cfg, &kpts);
    assert!(r_ser.converged);
    let mut energies = Vec::new();
    for shape in [GridShape::new(8, 1, 1), GridShape::new(2, 2, 2)] {
        let dcfg = DistScfConfig::new(cfg.clone()).with_grid(shape);
        let results = run_grid(&dcfg, 8, &kpts);
        for r in &results {
            assert!(r.converged, "rank {} on {shape} did not converge", r.rank);
            let d = (r.energy.free_energy - r_ser.energy.free_energy).abs();
            assert!(
                d <= 1e-10,
                "{shape} energy {} vs serial {} (|d| = {d:.3e})",
                r.energy.free_energy,
                r_ser.energy.free_energy
            );
            // every rank reports all k-points' eigenvalues, including the
            // k-group it does not own
            assert_eq!(r.eigenvalues.len(), kpts.len());
            assert!(r.eigenvalues.iter().all(|e| e.len() == 4));
        }
        energies.push(results[0].energy.free_energy);
    }
    let d = (energies[0] - energies[1]).abs();
    assert!(d <= 1e-10, "8x1 vs 2x2x2 layout drift {d:.3e}");
}

/// The degenerate n x 1 x 1 grid takes the grid code path (group
/// collectives, band-split ChFES bookkeeping) yet lands on exactly the
/// same bits as the 1D slab path it generalizes.
#[test]
fn slab_shaped_grid_is_bit_identical_to_1d_path() {
    let cfg = parity_cfg();
    let d_1d = DistScfConfig::new(cfg.clone());
    let d_grid = DistScfConfig::new(cfg).with_grid(GridShape::new(4, 1, 1));
    let a = run_grid(&d_1d, 4, &[KPoint::gamma()]);
    let b = run_grid(&d_grid, 4, &[KPoint::gamma()]);
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(
            ra.energy.free_energy.to_bits(),
            rb.energy.free_energy.to_bits(),
            "rank {}: slab-shaped grid diverged from the 1D path",
            ra.rank
        );
        assert_eq!(ra.eigenvalues, rb.eigenvalues);
        assert_eq!(ra.residual_history, rb.residual_history);
    }
}

/// Cross-iteration ghost overlap reorders only the wire traffic, never the
/// arithmetic: energies, eigenvalues, and the residual trace are
/// bit-identical with overlap on and off, on both the 1D and 2x2 layouts.
#[test]
fn overlap_is_bit_identical_on_and_off() {
    let cfg = parity_cfg();
    for grid in [None, Some(GridShape::new(2, 2, 1))] {
        let make = |overlap: bool| {
            let mut d = DistScfConfig::new(cfg.clone());
            d.grid = grid;
            if overlap {
                d = d.with_overlap();
            }
            d
        };
        let off = run_grid(&make(false), 4, &[KPoint::gamma()]);
        let on = run_grid(&make(true), 4, &[KPoint::gamma()]);
        for (ra, rb) in off.iter().zip(on.iter()) {
            assert_eq!(
                ra.energy.free_energy.to_bits(),
                rb.energy.free_energy.to_bits(),
                "rank {}: overlap changed the energy bits (grid {grid:?})",
                ra.rank
            );
            assert_eq!(ra.eigenvalues, rb.eigenvalues);
            assert_eq!(ra.residual_history, rb.residual_history);
        }
    }
}

/// FP32 off-band-diagonal subspace reductions (Sec. 5.4.2): the converged
/// energy stays within 1e-8 Ha of the all-FP64 grid run, and the run
/// actually moves FP32 bytes while the FP64 control moves none.
#[test]
fn subspace_fp32_energy_within_tolerance_and_moves_fp32_bytes() {
    let (space, sys) = parity_system();
    let cfg = parity_cfg();
    let mut energies = Vec::new();
    let mut fp32_bytes = Vec::new();
    for subspace_fp32 in [false, true] {
        let mut dcfg = DistScfConfig::new(cfg.clone()).with_grid(GridShape::new(2, 2, 1));
        if subspace_fp32 {
            dcfg = dcfg.with_subspace_fp32();
        }
        let (results, stats) = run_cluster(4, |comm| {
            distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        assert!(results.iter().all(|r| r.converged));
        energies.push(results[0].energy.free_energy);
        let (_, _, _, fp32) = stats.snapshot();
        fp32_bytes.push(fp32);
    }
    let d = (energies[0] - energies[1]).abs();
    assert!(
        d <= 1e-8,
        "fp64 subspace {} vs fp32 subspace {} (|d| = {d:.3e})",
        energies[0],
        energies[1]
    );
    assert_eq!(fp32_bytes[0], 0, "fp64 control moved fp32 bytes");
    assert!(fp32_bytes[1] > 0, "fp32 subspace run moved no fp32 bytes");
    // all-FP64 ghost wire in both runs: the FP32 traffic is subspace-only
}

/// Grid-reshard restart: a snapshot written on the 8x1 slab layout
/// restores onto a 4x2 domain x band grid (same rank count, different
/// shape) and reconverges to the uninterrupted slab run's free energy to
/// 1e-10 Ha. Band replicas write no wavefunction blocks, so the snapshot
/// itself shrinks with band parallelism — yet reassembles completely.
#[test]
fn restart_reshards_8x1_snapshot_onto_4x2_grid() {
    let dir = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "dft-grid-reshard-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    };

    // uninterrupted 8x1 reference
    let dcfg_ref = DistScfConfig::new(parity_cfg()).with_grid(GridShape::new(8, 1, 1));
    let reference = run_grid(&dcfg_ref, 8, &[KPoint::gamma()]);
    assert!(reference[0].converged);

    // truncated 8x1 run: snapshots every 2 iterations, stopped after 3
    let mut base = parity_cfg();
    base.max_iter = 3;
    let dcfg_cut = DistScfConfig::new(base)
        .with_grid(GridShape::new(8, 1, 1))
        .with_checkpoints(dir.clone(), 2);
    let cut = run_grid(&dcfg_cut, 8, &[KPoint::gamma()]);
    assert!(!cut[0].converged, "3 iterations must not converge");

    // resume the snapshot on a different grid shape
    let dcfg_resume = DistScfConfig::new(parity_cfg())
        .with_grid(GridShape::new(4, 2, 1))
        .with_restart_from(dir.clone());
    let resumed = run_grid(&dcfg_resume, 8, &[KPoint::gamma()]);
    for r in &resumed {
        assert_eq!(r.resumed_from, Some(2), "rank {} did not resume", r.rank);
        assert!(r.converged, "rank {} did not reconverge", r.rank);
        let d = (r.energy.free_energy - reference[0].energy.free_energy).abs();
        assert!(
            d <= 1e-10,
            "resharded energy {} vs 8x1 reference {} (|d| = {d:.3e})",
            r.energy.free_energy,
            reference[0].energy.free_energy
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overlap drives the exposed ghost-wait down on the wire-heavy FP32
/// filter; here we only check the counter plumbing — the wait counter
/// accumulates at all — since wall-clock assertions are flaky in CI.
#[test]
fn ghost_wait_counter_accumulates() {
    let cfg = parity_cfg();
    let dcfg = DistScfConfig::new(cfg).with_overlap();
    let (space, sys) = parity_system();
    let (results, stats) = run_cluster(2, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
    });
    assert!(results.iter().all(|r| r.converged));
    assert!(
        stats
            .ghost_wait_nanos
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "ghost-wait counter never accumulated"
    );
}
