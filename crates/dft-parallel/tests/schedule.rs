//! Schedule-exploration gate: the distributed SCF and force kernels must
//! be bit-identical under every seeded message-delivery schedule.
//!
//! The solvers claim determinism *by construction* — collectives
//! accumulate in fixed rank order, ghost harvests fill slots in list
//! order, never arrival order. [`explore_schedules`] checks that claim
//! mechanically: each schedule perturbs send timing and pending-queue
//! order (per-stream FIFO preserved), reruns the oracle, and compares
//! bits against schedule 0. A divergence here means some reduction or
//! assembly picked up arrival order — a silent reproducibility bug the
//! ordinary oracle tests cannot see.
//!
//! Honors `DFT_SCHED_EXPLORE` (`off`/`0` skips, a number overrides the
//! default of 8 schedules) — the same escape hatch `scripts/ci.sh`
//! documents.

use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::WirePrecision;
use dft_hpc::explore::{explore_schedules, schedules_from_env, SchedulePlan};
use dft_hpc::ClusterOptions;
use dft_parallel::{distributed_forces, distributed_scf, DistScfConfig};

const NRANKS: usize = 4;
const N_SCHEDULES: usize = 8;

fn parity_system() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

/// A short unconverged SCF is enough: bit-comparison across schedules
/// needs identical arithmetic, not a converged answer, and 8 iterations
/// already cross every collective and ghost-exchange path per schedule.
fn short_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-14,
        max_iter: 8,
        cheb_degree: 20,
        first_iter_cf_passes: 3,
        ..ScfConfig::default()
    }
}

#[test]
fn scf_and_forces_are_bit_identical_across_seeded_schedules() {
    let n_schedules = schedules_from_env(N_SCHEDULES);
    if n_schedules == 0 {
        eprintln!("DFT_SCHED_EXPLORE=off: skipping schedule exploration");
        return;
    }
    let (space, sys) = parity_system();
    let dcfg = DistScfConfig::new(short_cfg()).with_wire(WirePrecision::Fp64);

    let fingerprints = explore_schedules(
        NRANKS,
        n_schedules,
        0x5CF0_F0CE,
        SchedulePlan::new,
        &ClusterOptions::default(),
        |comm| {
            let r = distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()])
                .expect("scf under explored schedule");
            let forces = distributed_forces(comm, &space, &sys, &r.density.values, None)
                .expect("forces under explored schedule");
            // everything replicated, as bits: any arrival-order sensitivity
            // anywhere in the pipeline shows up as a differing fingerprint
            let mut bits: Vec<u64> = vec![r.energy.free_energy.to_bits(), r.mu.to_bits()];
            bits.extend(r.eigenvalues.iter().flatten().map(|e| e.to_bits()));
            bits.extend(r.density.values.iter().map(|v| v.to_bits()));
            bits.extend(forces.iter().flatten().map(|f| f.to_bits()));
            bits
        },
    )
    .unwrap_or_else(|d| panic!("distributed SCF/forces are schedule-sensitive: {d}"));

    // and the replicated fingerprint agrees across ranks within a schedule
    for (rank, fp) in fingerprints.iter().enumerate() {
        assert_eq!(
            fp, &fingerprints[0],
            "rank {rank} fingerprint differs from rank 0 within one schedule"
        );
    }
}

/// The FP32 boundary-exchange path is schedule-invariant too: demotion
/// happens at a fixed pipeline point, not at delivery time.
#[test]
fn fp32_wire_scf_is_bit_identical_across_seeded_schedules() {
    let n_schedules = schedules_from_env(N_SCHEDULES).min(4);
    if n_schedules == 0 {
        eprintln!("DFT_SCHED_EXPLORE=off: skipping schedule exploration");
        return;
    }
    let (space, sys) = parity_system();
    let dcfg = DistScfConfig::new(short_cfg()).with_wire(WirePrecision::Fp32);
    explore_schedules(
        NRANKS,
        n_schedules,
        0xF32,
        SchedulePlan::new,
        &ClusterOptions::default(),
        |comm| {
            let r = distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()])
                .expect("fp32 scf under explored schedule");
            r.energy.free_energy.to_bits()
        },
    )
    .unwrap_or_else(|d| panic!("FP32-wire SCF is schedule-sensitive: {d}"));
}
