//! Oracle tests for the distributed force assembly and the distributed
//! FIRE driver: every rank's [`distributed_forces`] output is checked
//! against the serial [`compute_forces`] on periodic and Dirichlet
//! goldens, across rank counts and process-grid shapes, for bitwise
//! run-to-run determinism (L004), and the full `dist_relax` trajectory is
//! checked against the serial `relax` driver.

use dft_core::forces::compute_forces;
use dft_core::relax::{relax, RelaxConfig};
use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_hpc::comm::run_cluster;
use dft_parallel::{dist_relax, distributed_forces, DistRelaxConfig, DistScfConfig, GridShape};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Three asymmetric smeared ions — no force component is accidentally
/// zero, so a sign or partition bug cannot hide behind symmetry.
fn force_system() -> AtomicSystem {
    AtomicSystem::new(vec![
        Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [1.3, 2.0, 2.0],
        },
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [2.7, 2.1, 1.8],
        },
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [2.0, 1.1, 2.9],
        },
    ])
}

fn max_component_err(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut err: f64 = 0.0;
    for (fa, fb) in a.iter().zip(b.iter()) {
        for k in 0..3 {
            err = err.max((fa[k] - fb[k]).abs());
        }
    }
    err
}

/// Distributed forces at `nranks` (slab grid) against the serial
/// assembly: every rank must agree to 1e-12 per component.
fn check_force_oracle(space: &FeSpace, sys: &AtomicSystem, rho_e: &[f64], nranks: usize) {
    let f_ref = compute_forces(space, sys, rho_e).expect("serial forces");
    let (results, _) = run_cluster(nranks, |comm| {
        distributed_forces(comm, space, sys, rho_e, None).expect("dist forces")
    });
    for (r, f) in results.iter().enumerate() {
        let e = max_component_err(f, &f_ref);
        assert!(e <= 1e-12, "rank {r}/{nranks}: force error {e:.3e}");
    }
}

#[test]
fn distributed_forces_match_serial_periodic() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let sys = force_system();
    let rho_e = sys.initial_density(&space);
    for nranks in [2, 4] {
        check_force_oracle(&space, &sys, &rho_e, nranks);
    }
}

#[test]
fn distributed_forces_match_serial_dirichlet() {
    let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
    let sys = force_system();
    let rho_e = sys.initial_density(&space);
    for nranks in [2, 4] {
        check_force_oracle(&space, &sys, &rho_e, nranks);
    }
}

/// Band- and k-replicated grid shapes must count every owned node exactly
/// once: the masked electrostatic partials tile the serial sum no matter
/// how the 4 ranks are factored.
#[test]
fn distributed_forces_match_serial_across_grid_shapes() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let sys = force_system();
    let rho_e = sys.initial_density(&space);
    let f_ref = compute_forces(&space, &sys, &rho_e).expect("serial forces");
    for shape in [
        GridShape::new(4, 1, 1),
        GridShape::new(2, 2, 1),
        GridShape::new(1, 2, 2),
    ] {
        let (results, _) = run_cluster(4, |comm| {
            distributed_forces(comm, &space, &sys, &rho_e, Some(shape)).expect("dist forces")
        });
        for (r, f) in results.iter().enumerate() {
            let e = max_component_err(f, &f_ref);
            assert!(e <= 1e-12, "grid {shape:?} rank {r}: force error {e:.3e}");
        }
    }
}

/// The fixed-rank-order reduction makes repeated runs bit-identical and
/// the replicated result identical on every rank (L004).
#[test]
fn repeated_force_runs_are_bit_identical() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let sys = force_system();
    let rho_e = sys.initial_density(&space);
    let run = || {
        let (results, _) = run_cluster(4, |comm| {
            distributed_forces(comm, &space, &sys, &rho_e, Some(GridShape::new(2, 2, 1)))
                .expect("dist forces")
        });
        results
    };
    let (a, b) = (run(), run());
    for (r, f) in a.iter().enumerate() {
        for (ai, (fa, f0)) in f.iter().zip(a[0].iter()).enumerate() {
            for k in 0..3 {
                assert_eq!(
                    fa[k].to_bits(),
                    f0[k].to_bits(),
                    "rank {r} atom {ai} axis {k} differs from rank 0 within one run"
                );
            }
        }
    }
    for (r, (fa, fb)) in a.iter().zip(b.iter()).enumerate() {
        for (ai, (va, vb)) in fa.iter().zip(fb.iter()).enumerate() {
            for k in 0..3 {
                assert_eq!(
                    va[k].to_bits(),
                    vb[k].to_bits(),
                    "rank {r} atom {ai} axis {k} differs between identical runs"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// dist_relax vs serial relax
// ---------------------------------------------------------------------------

fn relax_system() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    // an off-equilibrium dimer: nonzero forces drive a real FIRE move
    let sys = AtomicSystem::new(vec![
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [2.1, 3.0, 3.0],
        },
        Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
            pos: [3.9, 3.0, 3.0],
        },
    ]);
    (space, sys)
}

fn relax_scf_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dft-forces-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// A cold (no warm-start) distributed relaxation must walk the same FIRE
/// trajectory as the serial driver: same step count, matching energies
/// and max-forces at every geometry, final energies to 1e-10 Ha.
#[test]
fn dist_relax_matches_serial_relax_trajectory() {
    let (space, sys) = relax_system();
    let scf_cfg = relax_scf_cfg();
    let fire = RelaxConfig {
        max_steps: 2,
        ..RelaxConfig::default()
    };

    let r_ser = relax(&space, &sys, &Lda, &scf_cfg, &fire).expect("serial relax");
    assert!(r_ser.scf.converged, "serial relax SCF did not converge");

    let dcfg = DistScfConfig::new(scf_cfg);
    let rcfg = DistRelaxConfig {
        fire,
        warm_start: false,
    };
    let (results, _) = run_cluster(2, |comm| {
        dist_relax(comm, &space, &sys, &Lda, &dcfg, &rcfg, &[KPoint::gamma()]).expect("dist relax")
    });
    for r in &results {
        assert_eq!(
            r.trajectory.len(),
            r_ser.trajectory.len(),
            "trajectory step counts differ"
        );
        assert_eq!(r.converged, r_ser.converged, "convergence verdicts differ");
        for (i, (rec, &(e_ser, fmax_ser))) in
            r.trajectory.iter().zip(r_ser.trajectory.iter()).enumerate()
        {
            let de = (rec.free_energy - e_ser).abs();
            assert!(de <= 1e-8, "step {i}: |dE| = {de:.3e}");
            let df = (rec.fmax - fmax_ser).abs();
            assert!(df <= 1e-8, "step {i}: |d fmax| = {df:.3e}");
        }
        let de = (r.scf.energy.free_energy - r_ser.scf.energy.free_energy).abs();
        assert!(de <= 1e-10, "final relaxed energies differ by {de:.3e}");
        for (ai, (a, b)) in r
            .system
            .atoms
            .iter()
            .zip(r_ser.system.atoms.iter())
            .enumerate()
        {
            for k in 0..3 {
                let dp = (a.pos[k] - b.pos[k]).abs();
                assert!(dp <= 1e-8, "atom {ai} axis {k}: |dx| = {dp:.3e}");
            }
        }
    }
    // replicated trajectory agrees bitwise across the ranks of one run
    for r in &results[1..] {
        for (ra, r0) in r.trajectory.iter().zip(results[0].trajectory.iter()) {
            assert_eq!(ra.free_energy.to_bits(), r0.free_energy.to_bits());
            assert_eq!(ra.fmax.to_bits(), r0.fmax.to_bits());
        }
    }
}

/// With checkpoints enabled, every step after the first must warm-start
/// from the previous step's converged state and reconverge in fewer SCF
/// iterations than the cold first step.
#[test]
fn warm_started_relax_steps_reconverge_faster() {
    let (space, sys) = relax_system();
    let dir = fresh_dir("warm");
    let dcfg = DistScfConfig::new(relax_scf_cfg()).with_checkpoints(&dir, 50);
    let rcfg = DistRelaxConfig {
        fire: RelaxConfig {
            max_steps: 2,
            force_tol: 0.0, // never converges: all steps must execute
            ..RelaxConfig::default()
        },
        warm_start: true,
    };
    let (results, _) = run_cluster(2, |comm| {
        dist_relax(comm, &space, &sys, &Lda, &dcfg, &rcfg, &[KPoint::gamma()]).expect("dist relax")
    });
    for r in &results {
        assert_eq!(r.trajectory.len(), 3, "2 moves = 3 evaluations");
        assert!(!r.trajectory[0].warm_started, "first step must run cold");
        let cold = r.trajectory[0].scf_iterations;
        for (i, rec) in r.trajectory.iter().enumerate().skip(1) {
            assert!(rec.warm_started, "step {i} did not warm-start");
            assert!(rec.scf_iterations > 0, "step {i} performed no iterations");
            assert!(
                rec.scf_iterations < cold,
                "step {i}: warm {} !< cold {cold}",
                rec.scf_iterations
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
