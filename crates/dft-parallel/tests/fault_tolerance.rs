//! Fault-tolerance integration tests: deterministic rank kills during the
//! distributed SCF must surface as [`ScfError::RankLost`] on every rank
//! within the communicator deadline (never a hang), and restarting from the
//! on-disk checkpoint must reconverge to the uninterrupted free energy.

use dft_core::scf::{KPoint, ScfConfig};
use dft_core::system::{Atom, AtomKind, AtomicSystem};
use dft_core::xc::Lda;
use dft_fem::mesh::{Axis, BoundaryCondition as Bc, Mesh3d};
use dft_fem::space::FeSpace;
use dft_hpc::comm::{
    run_cluster, run_cluster_with, ClusterOptions, CommError, FaultPlan, COLLECTIVE_TAGS,
};
use dft_parallel::scf::ScfError;
use dft_parallel::{distributed_scf, ghost_tag_band, scf_with_recovery, DistScfConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn parity_system() -> (FeSpace, AtomicSystem) {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
        pos: [3.0, 3.0, 3.0],
    }]);
    (space, sys)
}

fn parity_cfg() -> ScfConfig {
    ScfConfig {
        n_states: 4,
        kt: 0.02,
        tol: 1e-6,
        max_iter: 60,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dft-ft-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// Every rank of a faulted run must return `Err` — the victim with a
/// `Killed` cause, the survivors with a `Timeout`/`PeerGone` cause — within
/// a small multiple of the communicator deadline.
fn assert_all_lost(
    results: Vec<Result<dft_parallel::DistScfResult, ScfError>>,
    victim: usize,
    elapsed: Duration,
    budget: Duration,
) {
    assert!(
        elapsed < budget,
        "cluster took {elapsed:?} to drain (budget {budget:?})"
    );
    for (r, res) in results.into_iter().enumerate() {
        let err = match res {
            Ok(_) => panic!("rank {r} finished the SCF despite the kill"),
            Err(e) => e,
        };
        match err {
            ScfError::RankLost { rank, cause, .. } => {
                assert_eq!(rank, r, "error must name the reporting rank");
                if r == victim {
                    assert_eq!(cause, CommError::Killed { rank: victim });
                } else {
                    assert!(
                        matches!(
                            cause,
                            CommError::Timeout { .. } | CommError::PeerGone { .. }
                        ),
                        "survivor {r}: unexpected cause {cause:?}"
                    );
                }
            }
            other => panic!("rank {r}: expected RankLost, got {other:?}"),
        }
    }
}

/// Kill a rank on its first ghost-exchange send of SCF iteration 1 (mid
/// Chebyshev filter): survivors must drain with `RankLost`, not hang.
#[test]
fn kill_mid_chebyshev_filter_drains_cleanly() {
    let (space, sys) = parity_system();
    let dcfg = DistScfConfig::new(parity_cfg());
    let opts = ClusterOptions {
        timeout: Duration::from_secs(2),
        faults: std::sync::Arc::new(FaultPlan::kill_on_send(1, 2, ghost_tag_band(), 0)),
        schedule: None,
    };
    let t0 = Instant::now();
    let (results, stats) = run_cluster_with(4, &opts, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()])
    });
    assert_all_lost(results, 1, t0.elapsed(), Duration::from_secs(30));
    let (timeouts, kills, _) = stats.fault_snapshot();
    assert_eq!(kills, 1, "exactly one rank must have been killed");
    assert!(timeouts >= 1, "survivors must have timed out");
}

/// Kill a rank between the receive legs of a subspace allreduce: the ring
/// stalls on every rank, and all of them must report `RankLost` in bounded
/// time.
#[test]
fn kill_mid_allreduce_drains_cleanly() {
    let (space, sys) = parity_system();
    let dcfg = DistScfConfig::new(parity_cfg());
    let opts = ClusterOptions {
        timeout: Duration::from_secs(2),
        faults: std::sync::Arc::new(FaultPlan::kill_on_send(2, 2, COLLECTIVE_TAGS, 1)),
        schedule: None,
    };
    let t0 = Instant::now();
    let (results, _) = run_cluster_with(4, &opts, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()])
    });
    assert_all_lost(results, 2, t0.elapsed(), Duration::from_secs(30));
}

/// More ranks than cells: the surplus ranks own nothing but must still
/// participate in every collective, and the converged energy must match a
/// fully loaded run of the same system to SCF-parity accuracy.
#[test]
fn scf_with_empty_ranks_matches_fewer_rank_energy() {
    let mesh = Mesh3d::new(
        [
            Axis::uniform(4, 0.0, 8.0, Bc::Dirichlet),
            Axis::uniform(1, 0.0, 2.0, Bc::Dirichlet),
            Axis::uniform(1, 0.0, 2.0, Bc::Dirichlet),
        ],
        2,
    );
    let space = FeSpace::new(mesh);
    assert_eq!(space.cells().len(), 4);
    let sys = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
        pos: [4.0, 1.0, 1.0],
    }]);
    let dcfg = DistScfConfig::new(ScfConfig {
        n_states: 3,
        kt: 0.02,
        tol: 1e-7,
        max_iter: 80,
        cheb_degree: 20,
        ..ScfConfig::default()
    });
    let energy_at = |nranks: usize| {
        let (results, _) = run_cluster(nranks, |comm| {
            distributed_scf(comm, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()]).expect("scf")
        });
        for r in &results {
            assert!(r.converged, "rank {}/{nranks} did not converge", r.rank);
        }
        results[0].energy.free_energy
    };
    let e2 = energy_at(2);
    // 5 ranks on 4 cells: rank 4 owns no cells, no DoFs, no neighbors
    let e5 = energy_at(5);
    let d = (e5 - e2).abs();
    assert!(d <= 1e-10, "5-rank {e5} vs 2-rank {e2} (|d| = {d:.3e})");
}

/// Same-rank-count restart contract: stop a checkpointing run early, resume
/// it, and the completed trajectory must be *bit-identical* to a run that
/// was never interrupted.
#[test]
fn resume_at_same_rank_count_is_bit_identical() {
    let (space, sys) = parity_system();
    let dir = fresh_dir("resume");

    // uninterrupted reference (no checkpointing)
    let dcfg_ref = DistScfConfig::new(parity_cfg());
    let (reference, _) = run_cluster(4, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg_ref, &[KPoint::gamma()]).expect("scf")
    });
    assert!(reference[0].converged);

    // truncated run: snapshots every 2 iterations, stopped after 3
    let mut base = parity_cfg();
    base.max_iter = 3;
    let dcfg_cut = DistScfConfig::new(base).with_checkpoints(dir.clone(), 2);
    let (cut, _) = run_cluster(4, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg_cut, &[KPoint::gamma()]).expect("scf")
    });
    assert!(!cut[0].converged, "3 iterations must not converge");

    // resume to completion
    let dcfg_resume = DistScfConfig::new(parity_cfg())
        .with_checkpoints(dir.clone(), 2)
        .with_restart();
    let (resumed, _) = run_cluster(4, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg_resume, &[KPoint::gamma()]).expect("scf")
    });
    for (r, (a, b)) in reference.iter().zip(resumed.iter()).enumerate() {
        assert_eq!(b.resumed_from, Some(2), "rank {r} did not resume");
        assert_eq!(
            a.energy.free_energy.to_bits(),
            b.energy.free_energy.to_bits(),
            "rank {r}: resumed energy differs from uninterrupted"
        );
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(
            a.residual_history, b.residual_history,
            "rank {r}: resumed residual trajectory differs"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a 4-rank SCF with rank 2 killed at iteration 3
/// (1-based) neither hangs nor panics — survivors return `RankLost` before
/// the deadline — and the recovery driver restarts from the last complete
/// snapshot at 3 ranks, reconverging to the uninterrupted free energy
/// within 1e-10 Ha.
#[test]
fn killed_rank_recovery_reconverges_to_uninterrupted_energy() {
    let (space, sys) = parity_system();
    let dir = fresh_dir("recover");

    // uninterrupted 4-rank reference
    let dcfg_ref = DistScfConfig::new(parity_cfg());
    let (reference, _) = run_cluster(4, |comm| {
        distributed_scf(comm, &space, &sys, &Lda, &dcfg_ref, &[KPoint::gamma()]).expect("scf")
    });
    assert!(reference[0].converged);
    let e_ref = reference[0].energy.free_energy;

    // faulted run: kill rank 2 at its 3rd epoch advance (SCF iteration 3,
    // 1-based); snapshots every 2 iterations land a complete checkpoint at
    // iteration 2 just before the kill fires
    let dcfg = DistScfConfig::new(parity_cfg()).with_checkpoints(dir.clone(), 2);
    let opts = ClusterOptions {
        timeout: Duration::from_secs(2),
        faults: std::sync::Arc::new(FaultPlan::kill_at_epoch(2, 3)),
        schedule: None,
    };
    let t0 = Instant::now();
    let report = scf_with_recovery(4, &opts, &space, &sys, &Lda, &dcfg, &[KPoint::gamma()], 2)
        .expect("recovery must succeed");
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "recovery took {:?}",
        t0.elapsed()
    );

    assert_eq!(report.attempts, 2, "one kill must cost exactly one restart");
    assert_eq!(report.initial_nranks, 4);
    assert_eq!(report.final_nranks, 3, "restart must drop the dead rank");
    assert!(
        matches!(report.first_failure, Some(ScfError::RankLost { .. })),
        "first failure must be the injected kill: {:?}",
        report.first_failure
    );
    assert_eq!(report.results.len(), 3);
    for r in &report.results {
        assert!(r.converged, "restarted rank {} did not converge", r.rank);
        assert_eq!(
            r.resumed_from,
            Some(2),
            "restart must resume from the iteration-2 snapshot"
        );
        let d = (r.energy.free_energy - e_ref).abs();
        assert!(
            d <= 1e-10,
            "recovered energy {} vs uninterrupted {} (|d| = {d:.3e})",
            r.energy.free_energy,
            e_ref
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
