//! The exascale headline in one view: simulate the paper's Gordon-Bell
//! runs (Table 3) and the YbCd strong-scaling study (Fig. 8) with the
//! calibrated machine models.
//!
//! ```sh
//! cargo run --release --example exascale_scaling
//! ```

use dft_fe_mlxc::hpc::machine::{ClusterSpec, MachineModel};
use dft_fe_mlxc::hpc::schedule::{scf_step, DftSystemSpec, SolverOptions};

fn main() {
    let twin_c = DftSystemSpec::new("TwinDislocMgY(C)", 74_164.0, 154_781.0, 1.7e9, 4, true, 8);
    let opts = SolverOptions {
        gpu_aware: false,
        ..SolverOptions::default()
    };
    let r = scf_step(
        &twin_c,
        &opts,
        &ClusterSpec::new(MachineModel::frontier(), 8000),
    );
    println!("The Gordon-Bell run: {} on 8,000 Frontier nodes", r.system);
    println!(
        "  {:.0} supercell electrons, M = {:.2e} FE DoF",
        twin_c.supercell_electrons(),
        twin_c.dofs
    );
    println!(
        "  one SCF iteration: {:.1} s, {:.1} PFLOP counted -> {:.1} PFLOPS sustained ({:.1}% of FP64 peak)",
        r.total_seconds,
        r.total_pflop,
        r.sustained_pflops(),
        100.0 * r.efficiency()
    );
    println!("  paper: 513.7 s, 659.7 PFLOPS, 43.1%");
    println!();
    println!("per-step breakdown (paper Table 3 order):");
    for s in &r.steps {
        println!(
            "  {:<14} {:>8.1} s {:>12} PFLOP",
            s.name,
            s.seconds,
            s.pflop.map_or("-".into(), |f| format!("{f:.1}"))
        );
    }
    println!();
    println!("YbCd quasicrystal strong scaling across machines (s/SCF):");
    let ybcd = DftSystemSpec::new("YbCd", 1943.0, 40_040.0, 75_069_290.0, 1, false, 7);
    let fast = SolverOptions::default();
    for (m, nodes) in [
        (MachineModel::frontier(), vec![60, 240, 960]),
        (MachineModel::perlmutter(), vec![140, 560, 1120]),
        (MachineModel::summit(), vec![240, 960, 1920]),
    ] {
        print!("  {:<12}", m.name);
        for n in nodes {
            let r = scf_step(&ybcd, &fast, &ClusterSpec::new(m.clone(), n));
            print!("  {n:>5} nodes: {:>7.1}", r.total_seconds);
        }
        println!();
    }
}
