//! Science application 1 (Sec. 6.2): size-dependent stability of
//! icosahedral quasicrystal nanoparticles — bulk vs surface energy
//! competition, at miniature scale with the real solver.
//!
//! The paper resolves, for the first time, the thermodynamic stability of
//! YbCd quasicrystal nanoparticles against crystalline phases by accurate
//! ground states of ~2,000-atom particles. Here we carve two cut-and-
//! project nanoparticles of different radii, run real Kohn-Sham SCF on
//! each (soft pseudopotentials, miniature electron counts), and extract
//! the energy-per-atom trend whose extrapolation is the bulk/surface
//! decomposition.
//!
//! ```sh
//! cargo run --release --example quasicrystal_stability
//! ```

use dft_fe_mlxc::core::scf::{scf, KPoint, ScfConfig};
use dft_fe_mlxc::core::system::{Atom, AtomKind, AtomicSystem};
use dft_fe_mlxc::core::xc::Lda;
use dft_fe_mlxc::fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fe_mlxc::fem::space::FeSpace;
use dft_fe_mlxc::materials::quasicrystal::{nanoparticle, QcParams};

fn main() {
    let params = QcParams {
        lattice_constant: 4.4,
        window: 1.35,
        yb_window_fraction: 0.45,
        n_range: 2,
    };
    let mut rows = Vec::new();
    for radius in [2.6, 4.6] {
        let np = nanoparticle(&params, radius, 6.0);
        println!(
            "nanoparticle r = {radius:.1} Bohr: {} atoms ({} 'Yb', {} 'Cd'), box {:.1}^3",
            np.n_atoms(),
            np.count("Yb"),
            np.count("Cd"),
            np.cell[0]
        );
        // miniature electronic structure: light two-electron pseudo-atoms
        // for "Cd", three-electron for "Yb" (the real species are far
        // beyond a laptop; the geometry and the bulk/surface competition
        // are what this miniature preserves)
        let atoms: Vec<Atom> = np
            .positions
            .iter()
            .zip(&np.species)
            .map(|(&pos, &sp)| Atom {
                kind: AtomKind::Pseudo {
                    z: if sp == "Yb" { 3.0 } else { 2.0 },
                    r_c: 0.7,
                },
                pos,
            })
            .collect();
        let system = AtomicSystem::new(atoms);
        let n_el = system.n_electrons();
        let centers: Vec<f64> = np.positions.iter().map(|p| p[0]).collect();
        let ax = |d: usize| {
            let c: Vec<f64> = np.positions.iter().map(|p| p[d]).collect();
            let _ = &centers;
            Axis::graded(
                0.0,
                np.cell[d],
                0.8,
                3.0,
                &c,
                2.0,
                BoundaryCondition::Dirichlet,
            )
        };
        let space = FeSpace::new(Mesh3d::new([ax(0), ax(1), ax(2)], 3));
        let cfg = ScfConfig {
            n_states: (n_el / 2.0).ceil() as usize + 4,
            kt: 0.02,
            tol: 5e-5,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            verbose: true,
            ..ScfConfig::default()
        };
        let r = scf(&space, &system, &Lda, &cfg, &[KPoint::gamma()]);
        let e_per_atom = r.energy.free_energy / np.n_atoms() as f64;
        println!(
            "  -> converged: {}, E = {:+.4} Ha, E/atom = {:+.4} Ha\n",
            r.converged, r.energy.free_energy, e_per_atom
        );
        rows.push((radius, np.n_atoms(), e_per_atom));
    }
    println!("size dependence (surface makes small particles less bound per atom):");
    for (r, n, e) in &rows {
        println!("  r = {r:.1}  ({n:>3} atoms)   E/atom = {e:+.4} Ha");
    }
    if rows.len() == 2 {
        let d = rows[1].2 - rows[0].2;
        println!(
            "  larger particle is {} per atom by {:.1} mHa (bulk term winning over surface)",
            if d < 0.0 { "more bound" } else { "less bound" },
            1000.0 * d.abs()
        );
    }
}
