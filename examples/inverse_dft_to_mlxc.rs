//! The full methodological pipeline of the paper's Fig. 2, end to end:
//!
//! 1. "QMB" reference densities (hidden-truth functional, DESIGN.md S2);
//! 2. **invDFT**: recover the exact XC potential from each density;
//! 3. **MLXC**: train the neural functional on the `{rho, v_xc}` pairs;
//! 4. **DFT-FE-MLXC**: run the SCF with the trained functional on a
//!    held-out system and compare against the truth.
//!
//! ```sh
//! cargo run --release --example inverse_dft_to_mlxc
//! ```

use dft_fe_mlxc::core::scf::{scf, KPoint};
use dft_fe_mlxc::core::xc::{Lda, MlxcFunctional, SyntheticTruth};
use dft_fe_mlxc::qmb::scaling::projected_fci_dimension;

fn main() {
    // dft-bench hosts the shared pipeline driver
    use dft_bench_pipeline::*;
    let cfg = PipelineConfig {
        invdft_iters: 50,
        epochs: 300,
        verbose: true,
        ..PipelineConfig::default()
    };
    println!("training systems: hidden-truth SCF -> invDFT -> MLXC training");
    let train_set = MiniSystem::training_set();
    let (model, loss, diags) = train_mlxc_from_invdft(&train_set[..3], &cfg);
    println!(
        "\ntraining loss {:.3e} -> {:.3e}",
        loss[0],
        loss.last().unwrap()
    );
    for d in &diags {
        println!(
            "  {}: invDFT mismatch {:.2e} -> {:.2e}",
            d.name, d.invdft_first, d.invdft_last
        );
    }

    println!("\nheld-out test: SCF with MLXC vs LDA vs hidden truth");
    let ms = &MiniSystem::test_set()[0];
    let space = ms.space();
    let sys = ms.atomic_system();
    let cfg_scf = ms.scf_config();
    let truth = scf(&space, &sys, &SyntheticTruth, &cfg_scf, &[KPoint::gamma()]);
    let lda = scf(&space, &sys, &Lda, &cfg_scf, &[KPoint::gamma()]);
    let mlxc = scf(
        &space,
        &sys,
        &MlxcFunctional::new(model),
        &cfg_scf,
        &[KPoint::gamma()],
    );
    let ref_e = truth.energy.free_energy;
    println!("truth: {ref_e:+.6} Ha");
    println!(
        "LDA:   {:+.6} Ha  (error {:+.2} mHa)",
        lda.energy.free_energy,
        1000.0 * (lda.energy.free_energy - ref_e)
    );
    println!(
        "MLXC:  {:+.6} Ha  (error {:+.2} mHa)",
        mlxc.energy.free_energy,
        1000.0 * (mlxc.energy.free_energy - ref_e)
    );

    println!(
        "\n(for context: a genuine QMB treatment of this system would need a \
         determinant space of ~{:.1e} — the Fig. 1 wall)",
        projected_fci_dimension(4)
    );
}

/// Re-export the shared pipeline (lives in the benchmark crate).
mod dft_bench_pipeline {
    pub use dft_bench::pipeline::*;
}
