//! Science application 2 (Sec. 6.2): a screw dislocation and a solute in
//! magnesium — the DislocMgY geometry at miniature scale, with Bloch
//! k-point sampling along the periodic dislocation line.
//!
//! ```sh
//! cargo run --release --example mg_dislocation
//! ```

use dft_fe_mlxc::core::scf::{scf, KPoint, ScfConfig};
use dft_fe_mlxc::core::system::{Atom, AtomKind, AtomicSystem};
use dft_fe_mlxc::core::xc::Lda;
use dft_fe_mlxc::fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fe_mlxc::fem::space::FeSpace;
use dft_fe_mlxc::materials::defects::{random_solutes, screw_dislocation_z};
use dft_fe_mlxc::materials::mg::hcp_supercell;

fn main() {
    // A small HCP Mg slab, periodic along z (the dislocation line).
    let mut s = hcp_supercell(2, 1, 1, [false, false, true]);
    // 1 solute ("Y": one extra valence electron here)
    let picked = random_solutes(&mut s, "Y", 0.13, 4);
    println!(
        "Mg slab: {} atoms, {} Y solutes at {:?}",
        s.n_atoms(),
        s.count("Y"),
        picked
    );

    let run = |s: &dft_fe_mlxc::materials::Structure, label: &str| -> f64 {
        // vacuum padding in x/y; periodic in z
        let pad = 7.0;
        let lx = s.cell[0] + 2.0 * pad;
        let ly = s.cell[1] + 2.0 * pad;
        let atoms: Vec<Atom> = s
            .positions
            .iter()
            .zip(&s.species)
            .map(|(&p, &sp)| Atom {
                kind: AtomKind::Pseudo {
                    z: if sp == "Y" { 3.0 } else { 2.0 },
                    r_c: 0.8,
                },
                pos: [p[0] + pad, p[1] + pad, p[2].rem_euclid(s.cell[2])],
            })
            .collect();
        let system = AtomicSystem::new(atoms);
        let cx: Vec<f64> = system.atoms.iter().map(|a| a.pos[0]).collect();
        let cy: Vec<f64> = system.atoms.iter().map(|a| a.pos[1]).collect();
        let axx = Axis::graded(0.0, lx, 0.9, 3.5, &cx, 2.5, BoundaryCondition::Dirichlet);
        let axy = Axis::graded(0.0, ly, 0.9, 3.5, &cy, 2.5, BoundaryCondition::Dirichlet);
        let axz = Axis::uniform(2, 0.0, s.cell[2], BoundaryCondition::Periodic);
        let space = FeSpace::new(Mesh3d::new([axx, axy, axz], 3));
        let n_el = system.n_electrons();
        let cfg = ScfConfig {
            n_states: (n_el / 2.0).ceil() as usize + 4,
            kt: 0.02,
            tol: 5e-5,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        // 2 k-points along the periodic dislocation line (as in the paper's
        // DislocMgY) — this exercises the complex Bloch path
        let kpts = [
            KPoint {
                frac: [0.0, 0.0, 0.0],
                weight: 0.5,
            },
            KPoint {
                frac: [0.0, 0.0, 0.25],
                weight: 0.5,
            },
        ];
        let r = scf(&space, &system, &Lda, &cfg, &kpts);
        println!(
            "{label}: E = {:+.5} Ha (converged: {}, {} DoF, {} SCF iters)",
            r.energy.free_energy,
            r.converged,
            space.ndofs(),
            r.iterations
        );
        r.energy.free_energy
    };

    let e_perfect = run(&s, "perfect slab  ");
    // insert the screw dislocation through the slab centre
    let mut sd = s.clone();
    let b = sd.cell[2]; // Burgers magnitude = one period along the line
    let (cx, cy) = (sd.cell[0] / 2.0 + 0.3, sd.cell[1] / 2.0 + 0.3);
    screw_dislocation_z(&mut sd, cx, cy, b);
    let e_disloc = run(&sd, "with screw    ");

    println!();
    println!(
        "dislocation formation energy (miniature): {:+.4} Ha = {:+.1} mHa/atom",
        e_disloc - e_perfect,
        1000.0 * (e_disloc - e_perfect) / s.n_atoms() as f64
    );
    println!("(the paper's converged Delta E^(I-II) required ~10,000 atoms / 10^5 electrons)");
}
