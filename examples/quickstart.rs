//! Quickstart: a complete Kohn-Sham DFT ground-state calculation with the
//! spectral finite-element solver in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dft_fe_mlxc::core::scf::{scf, KPoint, ScfConfig};
use dft_fe_mlxc::core::system::{Atom, AtomKind, AtomicSystem};
use dft_fe_mlxc::core::xc::Lda;
use dft_fe_mlxc::fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fe_mlxc::fem::space::FeSpace;

fn main() {
    // A helium-like pseudo-atom in a 12 Bohr box, FE mesh graded toward
    // the nucleus, spectral degree 3.
    let l = 12.0;
    let ax = || {
        Axis::graded(
            0.0,
            l,
            0.5,
            3.0,
            &[l / 2.0],
            3.0,
            BoundaryCondition::Dirichlet,
        )
    };
    let space = FeSpace::new(Mesh3d::new([ax(), ax(), ax()], 3));
    println!(
        "FE space: {} nodes, {} DoFs, {} cells",
        space.nnodes(),
        space.ndofs(),
        space.cells().len()
    );

    let system = AtomicSystem::new(vec![Atom {
        kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
        pos: [l / 2.0; 3],
    }]);

    let cfg = ScfConfig {
        n_states: 4,
        verbose: true,
        ..ScfConfig::default()
    };
    let r = scf(&space, &system, &Lda, &cfg, &[KPoint::gamma()]);

    println!();
    println!("converged: {} in {} iterations", r.converged, r.iterations);
    println!("free energy:     {:+.6} Ha", r.energy.free_energy);
    println!("  kinetic:       {:+.6} Ha", r.energy.kinetic);
    println!("  electrostatic: {:+.6} Ha", r.energy.electrostatic);
    println!("  xc:            {:+.6} Ha", r.energy.xc);
    println!("eigenvalues (Ha): {:?}", &r.eigenvalues[0][..4]);
    println!("electrons: {:.6}", r.density.integrate(&space));
}
