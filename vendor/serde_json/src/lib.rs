//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` shim's [`Value`] tree to JSON text and parses it
//! back. Floats are formatted with Rust's shortest-round-trip `Display`,
//! which preserves `f64` values exactly across a write/parse cycle (the
//! `float_roundtrip` feature of the real crate is therefore the default and
//! only behavior here).

pub use serde::Value;
use serde::{Deserialize, Number, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message())
    }
}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's Display for f64 is shortest-round-trip; ensure the token
        // stays a JSON number and survives as a float ("1" would re-parse
        // as an integer, which the Deserialize impls coerce back anyway).
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::F(x)) => write_f64(out, *x),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            write_items(out, items.len(), indent, |out, i, ind| {
                write_value(out, &items[i], ind)
            });
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            write_items(out, fields.len(), indent, |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind);
            });
            out.push('}');
        }
    }
}

fn write_items(
    out: &mut String,
    n: usize,
    indent: Option<usize>,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    let inner = indent.map(|d| d + 1);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if n > 0 {
        if let Some(d) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = tok.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = tok.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        tok.parse::<f64>()
            .map(|x| Value::Number(Number::F(x)))
            .map_err(|_| Error::new(format!("invalid number '{tok}'")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::F(1.25))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::String("x\"y\n".to_string())),
            ("n".to_string(), Value::Number(Number::I(-3))),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 6.02214076e23, -1e-300, 2.0f64.powi(-52)] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_floats_stay_numbers() {
        let text = to_string(&4.0f64).unwrap();
        assert_eq!(text, "4.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 4.0);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![
                Value::Number(Number::U(1)),
                Value::Number(Number::U(2)),
            ]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
