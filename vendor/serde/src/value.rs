//! The JSON-shaped value tree shared by the `serde` and `serde_json` shims.

/// A JSON number, kept in its exact source form so integers survive a
/// round trip without floating-point truncation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A float.
    F(f64),
    /// A non-negative integer.
    U(u64),
    /// A signed integer (negative values).
    I(i64),
}

/// A JSON-shaped dynamic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order preserved (structs serialize their fields
    /// in declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view as `f64` (accepts any number form).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(x)) => Some(*x),
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::I(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64` (integral, non-negative values only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integral values only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(i)) => Some(*i),
            Value::Number(Number::U(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Borrow as an object field list.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}
