//! Offline stand-in for `serde`.
//!
//! The real serde's visitor architecture exists to avoid intermediate
//! allocations; nothing in this workspace is serialization-bound, so this
//! shim uses the far simpler value-tree design: [`Serialize`] lowers to a
//! [`value::Value`] tree and [`Deserialize`] lifts from one. The derive
//! macros re-exported from `serde_derive` generate impls of these traits
//! for plain named-field structs, which is the only shape the workspace
//! derives on.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
    /// The message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Lift `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
    )*};
}
ser_float!(f64, f32);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| DeError::new(format!(
                        "expected number, found {}", v.kind()
                    )))
            }
        }
    )*};
}
de_float!(f64, f32);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::new(format!(
                    "expected unsigned integer, found {}", v.kind()
                )))?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::new(format!(
                    "expected integer, found {}", v.kind()
                )))?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Fetch field `name` from a struct object, defaulting to [`Value::Null`]
/// when absent (so `Option` fields tolerate missing keys). Used by the
/// derive-generated code.
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-4i32).to_value()).unwrap(), -4);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&1.5f64.to_value()).unwrap(),
            Some(1.5)
        );
    }

    #[test]
    fn integers_coerce_to_floats_but_not_conversely() {
        assert_eq!(f64::from_value(&Value::Number(Number::U(4))).unwrap(), 4.0);
        assert!(u64::from_value(&Value::Number(Number::F(4.5))).is_none_or_err());
    }

    trait NoneOrErr {
        fn is_none_or_err(&self) -> bool;
    }
    impl<T> NoneOrErr for Result<T, DeError> {
        fn is_none_or_err(&self) -> bool {
            self.is_err()
        }
    }
}
