//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used in this
//! workspace, and only in the MPSC configuration (cloned senders, a single
//! receiver per rank), which `std::sync::mpsc` covers exactly.

/// Drop-in subset of `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// Unbounded channel (alias of `std::sync::mpsc::channel`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn cloned_senders_reach_single_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
