//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of the `rand` 0.8 API the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — on top of xoshiro256** seeded through SplitMix64
//! (the same construction rand's `SmallRng` uses on 64-bit targets).
//! Streams are deterministic per seed, which is all the callers rely on.

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniform `u64` words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used in
/// this workspace).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample a value of type `Self` uniformly from `rng` (the shim's stand-in
/// for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection-free bounded sample is overkill
                // here; modulo bias is < 2^-32 for the spans in use.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling API (blanket impl over every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // the all-zero state is invalid
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic "standard" generator (xoshiro256** here; callers only
    /// depend on seed-reproducibility, not the exact stream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small, fast generator (same core as [`StdRng`] in this shim).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed ^ 0xD6E8FEB86659FD93))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
