//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: range / tuple / `collection::vec`
//! strategies, `prop_map`, `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Unlike the real
//! crate there is no shrinking and the RNG seed is fixed per (test, case), so
//! failures reproduce deterministically across runs.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random test inputs.
    pub trait Strategy: Sized {
        /// The type of the generated values.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy producing a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifier for [`vec`]: a fixed `usize` or a range of lengths.
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy: `element` drawn `size` times.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, len: size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// Input rejected by `prop_assume!`: skip, don't fail.
        Reject(String),
    }

    impl TestCaseError {
        /// Assertion-failure constructor.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Assumption-rejection constructor.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (splitmix64 stream).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`; the seed mixes both
        /// so every property sees a distinct but reproducible stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name), case, msg
                        ),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Assert a property inside `proptest!`; failure aborts the case with a
/// message rather than panicking directly (so the case index is reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // bind first so clippy never sees a negated comparison expression
        // from the caller's `$cond`
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in -2.0..2.0f64, n in 1usize..=4, k in 0u64..50) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..=4).contains(&n));
            prop_assert!(k < 50);
        }

        #[test]
        fn vec_and_prop_map_compose(
            v in crate::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 3..7)
                .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>()),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for &x in &v {
                prop_assert!(x.abs() <= 2.0);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0..1.0f64) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
