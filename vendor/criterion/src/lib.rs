//! Offline stand-in for `criterion`.
//!
//! Mirrors the real crate's execution model: invoked by `cargo bench` (cargo
//! passes `--bench`) it times each benchmark and prints a mean per-iteration
//! wall time plus optional throughput; invoked by `cargo test` it runs each
//! benchmark body exactly once as a smoke test. No statistics, plotting, or
//! baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    is_bench: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            is_bench: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            is_bench: self.is_bench,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            throughput: None,
            _crit: self,
        }
    }
}

/// Throughput annotation: reported as rate alongside the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (or FLOPs, or any countable unit) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a single parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }

    /// Id from a function name plus a parameter value.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    is_bench: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Number of measured iterations (upper bound; measurement time caps it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(
            self.is_bench,
            self.warm_up,
            self.measurement,
            self.sample_size,
        );
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(
            self.is_bench,
            self.warm_up,
            self.measurement,
            self.sample_size,
        );
        f(&mut b, input);
        b.report(&label, self.throughput);
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    is_bench: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(is_bench: bool, warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Self {
            is_bench,
            warm_up,
            measurement,
            sample_size,
            mean: None,
            iters: 0,
        }
    }

    /// Time `f`, called once per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.is_bench {
            // Test mode (`cargo test`): run once to validate the body.
            black_box(f());
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        loop {
            black_box(f());
            if Instant::now() >= warm_end {
                break;
            }
        }
        let start = Instant::now();
        let deadline = start + self.measurement;
        let mut iters = 0u64;
        while iters < self.sample_size as u64 {
            black_box(f());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.iters = iters;
        self.mean = Some(start.elapsed() / iters.max(1) as u32);
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        let Some(mean) = self.mean else {
            if self.is_bench {
                println!("{label}: no measurement (b.iter never called)");
            }
            return;
        };
        let secs = mean.as_secs_f64();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!(
            "{label}: mean {secs:.6e} s/iter ({} iters){rate}",
            self.iters
        );
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::from_parameter("n10"), &10u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_in_test_mode() {
        benches();
    }
}
