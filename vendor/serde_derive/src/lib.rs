//! Offline stand-in for `serde_derive`.
//!
//! Generates [`serde::Serialize`] / [`serde::Deserialize`] impls for the one
//! shape this workspace derives on: non-generic structs with named fields and
//! no `#[serde(...)]` attributes. The input is parsed directly from the token
//! stream (no `syn`/`quote`): skip outer attributes and visibility, read the
//! struct name, then split the brace-delimited body into `name: Type` fields
//! at top-level commas (tracking `<...>` depth so generic field types such as
//! `Vec<f64>` survive).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream, derive: &str) -> Result<StructDef, String> {
    let mut toks = input.into_iter().peekable();

    // Outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` & friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }

    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "#[derive({derive})] shim supports only structs, found {other:?}"
            ))
        }
    }

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "#[derive({derive})] shim does not support generic struct `{name}`"
            ))
        }
        other => {
            return Err(format!(
                "#[derive({derive})] shim supports only named-field structs \
                 (struct `{name}`), found {other:?}"
            ))
        }
    };

    // Split the body into fields at top-level commas.
    let mut fields = Vec::new();
    let mut body_toks = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match body_toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    body_toks.next();
                    body_toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    body_toks.next();
                    if let Some(TokenTree::Group(g)) = body_toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            body_toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match body_toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name in `{name}`, found {other:?}")),
        };
        match body_toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}.{field}`, found {other:?}"
                ))
            }
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in body_toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }

    Ok(StructDef { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` for a plain named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input, "Serialize") {
        Ok(def) => def,
        Err(msg) => return compile_error(&msg),
    };
    let pushes: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push(({f:?}.to_string(), \
                 ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}\n",
        name = def.name,
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` for a plain named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input, "Deserialize") {
        Ok(def) => def,
        Err(msg) => return compile_error(&msg),
    };
    let name = &def.name;
    let inits: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::get_field(obj, {f:?}))\
                 .map_err(|e| ::serde::DeError::new(\
                     format!(\"{name}.{f}: {{}}\", e.message())))?,\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"expected object for {name}, found {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok(Self {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n",
    )
    .parse()
    .unwrap()
}
