//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access and a single CPU core, so
//! this shim maps the `par_*` entry points used by the workspace onto plain
//! sequential `std` iterators. Call sites compile unchanged — `par_iter()`,
//! `par_iter_mut()`, `par_chunks_mut()` and `into_par_iter()` simply return
//! the corresponding `std` iterator, whose adapters (`map`, `enumerate`,
//! `take`, `for_each`, `collect`, ...) behave identically to rayon's for
//! the deterministic, order-independent kernels in this repo.

/// `rayon::prelude` lookalike: extension traits providing the `par_*`
/// methods as sequential aliases.
pub mod prelude {
    /// `par_iter`/`par_iter_mut`/`par_chunks`/`par_chunks_mut` on slices.
    pub trait ParallelSliceExt<T> {
        /// Sequential alias of `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential alias of `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential alias of `rayon`'s `par_chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
        /// Sequential alias of `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `into_par_iter` on any owned iterable (ranges, `Vec`, ...).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential alias of `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_entry_points_match_sequential() {
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);

        let mut buf = vec![0.0f64; 6];
        buf.par_chunks_mut(3).enumerate().for_each(|(j, c)| {
            for v in c.iter_mut() {
                *v = j as f64;
            }
        });
        assert_eq!(buf, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }
}
