//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! `par_*` entry points used by the workspace without pulling in rayon
//! proper. Unlike the original pure-sequential alias shim, the terminal
//! operations (`for_each`, `collect`) now dispatch onto real scoped threads
//! when the machine reports more than one core (or `RAYON_NUM_THREADS`
//! requests it).
//!
//! Determinism contract — stronger than real rayon's:
//!
//! - Items are split into **contiguous chunks in a fixed order** (first
//!   `len % nt` chunks get one extra item). There is no work stealing; the
//!   chunk-to-thread assignment depends only on `(len, nt)`.
//! - `collect` concatenates per-thread results in spawn order, so the output
//!   sequence is **identical to the sequential order** regardless of thread
//!   scheduling.
//! - With one thread (`available_parallelism() == 1`, as on single-core CI
//!   boxes, or `RAYON_NUM_THREADS=1`), the lazy sequential path runs and the
//!   results are bit-identical to plain `std` iterators by construction.

use std::sync::OnceLock;

/// Number of worker threads the shim uses for parallel terminals.
///
/// Honors `RAYON_NUM_THREADS` (as real rayon does) when it parses to a
/// positive integer; otherwise falls back to
/// `std::thread::available_parallelism()`. Cached after the first call.
pub fn current_num_threads() -> usize {
    static NT: OnceLock<usize> = OnceLock::new();
    *NT.get_or_init(|| {
        if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Deterministic contiguous split: chunk sizes for `n` items over at most
/// `nt` workers. The first `n % nt` chunks are one item larger; empty
/// trailing chunks are never produced (workers are capped at `n`).
fn split_sizes(n: usize, nt: usize) -> Vec<usize> {
    let workers = nt.max(1).min(n.max(1));
    let base = n / workers;
    let rem = n % workers;
    (0..workers).map(|i| base + usize::from(i < rem)).collect()
}

/// Drain `items` into per-worker groups following [`split_sizes`].
fn split_groups<T>(items: Vec<T>, nt: usize) -> Vec<Vec<T>> {
    let sizes = split_sizes(items.len(), nt);
    let mut it = items.into_iter();
    sizes
        .iter()
        .map(|&s| it.by_ref().take(s).collect())
        .collect()
}

/// Run `f` over every item, on `nt` scoped threads when `nt > 1`.
///
/// Each worker owns one contiguous chunk and walks it in order; every item
/// is visited exactly once. A worker panic propagates when the scope joins.
fn run_items<T, F>(items: Vec<T>, nt: usize, f: &F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if nt <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let groups = split_groups(items, nt);
    std::thread::scope(|scope| {
        for group in groups {
            scope.spawn(move || {
                for item in group {
                    f(item);
                }
            });
        }
    });
}

/// Map `f` over every item, on `nt` scoped threads when `nt > 1`, returning
/// results in the sequential item order (concatenation in spawn order).
fn map_items<T, R, F>(items: Vec<T>, nt: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if nt <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let groups = split_groups(items, nt);
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move || group.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// Lazy parallel iterator: wraps a `std` iterator and defers the split
/// decision to the terminal operation.
pub struct Par<I> {
    iter: I,
}

impl<I: Iterator> Par<I> {
    /// Pair each item with its sequential index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            iter: self.iter.enumerate(),
        }
    }

    /// Keep only the first `n` items.
    pub fn take(self, n: usize) -> Par<std::iter::Take<I>> {
        Par {
            iter: self.iter.take(n),
        }
    }

    /// Pair items with another parallel iterator, in lockstep.
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par {
            iter: self.iter.zip(other.iter),
        }
    }

    /// Defer `f` to the terminal operation so it runs on the worker threads.
    pub fn map<R, F: Fn(I::Item) -> R>(self, f: F) -> ParMap<I, F> {
        ParMap { iter: self.iter, f }
    }

    /// Run `f` on every item. Sequential when one thread is available;
    /// otherwise deterministic contiguous chunks on scoped threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let nt = current_num_threads();
        if nt <= 1 {
            self.iter.for_each(f);
        } else {
            let items: Vec<I::Item> = self.iter.collect();
            run_items(items, nt, &f);
        }
    }
}

/// A [`Par`] with a pending `map` whose closure runs on the worker threads.
pub struct ParMap<I, F> {
    iter: I,
    f: F,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> ParMap<I, F> {
    /// Apply the map and collect results in sequential item order.
    pub fn collect<C: FromIterator<R>>(self) -> C
    where
        I::Item: Send,
        R: Send,
        F: Sync,
    {
        let nt = current_num_threads();
        if nt <= 1 {
            self.iter.map(self.f).collect()
        } else {
            let items: Vec<I::Item> = self.iter.collect();
            map_items(items, nt, &self.f).into_iter().collect()
        }
    }

    /// Apply the map for its side effects, discarding results.
    pub fn for_each(self)
    where
        I::Item: Send,
        R: Send,
        F: Sync,
    {
        let _: Vec<R> = self.collect();
    }
}

/// `par_iter`/`par_iter_mut`/`par_chunks`/`par_chunks_mut` on slices.
pub trait ParallelSliceExt<T> {
    /// Parallel counterpart of `slice::iter`.
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    /// Parallel counterpart of `slice::iter_mut`.
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    /// Parallel counterpart of `slice::chunks`.
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
    /// Parallel counterpart of `slice::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par { iter: self.iter() }
    }
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par {
            iter: self.iter_mut(),
        }
    }
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par {
            iter: self.chunks(size),
        }
    }
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par {
            iter: self.chunks_mut(size),
        }
    }
}

/// `into_par_iter` on any owned iterable (ranges, `Vec`, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Parallel counterpart of `into_iter`.
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par {
            iter: self.into_iter(),
        }
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `rayon::prelude` lookalike.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{map_items, run_items, split_sizes};

    #[test]
    fn par_entry_points_match_sequential_bit_for_bit() {
        // On a single-core box the public API takes the lazy sequential
        // path; on a multi-core box the deterministic split must still
        // reproduce the sequential order exactly. Either way the results
        // must be bit-identical to plain `std` iterators.
        let v: Vec<f64> = (0..37).map(|i| 0.1 * i as f64).collect();
        let par: Vec<f64> = v.par_iter().map(|&x| x.mul_add(1.5, -0.25)).collect();
        let seq: Vec<f64> = v.iter().map(|&x| x.mul_add(1.5, -0.25)).collect();
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!(p.to_bits(), s.to_bits());
        }

        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);

        let mut buf = vec![0.0f64; 6];
        buf.par_chunks_mut(3).enumerate().for_each(|(j, c)| {
            for v in c.iter_mut() {
                *v = j as f64;
            }
        });
        assert_eq!(buf, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);

        let mut zipped = vec![0i64; 7];
        let src: Vec<i64> = (0..7).map(|i| 10 * i).collect();
        zipped
            .par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(y, x)| {
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi = xi + 1;
                }
            });
        assert_eq!(zipped, vec![1, 11, 21, 31, 41, 51, 61]);
    }

    #[test]
    fn split_sizes_is_deterministic_and_covers_all_items() {
        for n in 0..50usize {
            for nt in 1..8usize {
                let sizes = split_sizes(n, nt);
                assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} nt={nt}");
                // No empty chunks, no more workers than items.
                if n > 0 {
                    assert!(sizes.iter().all(|&s| s > 0), "n={n} nt={nt}");
                    assert!(sizes.len() <= nt.max(1));
                }
                // Fixed order: sizes never increase (extra items go first).
                for w in sizes.windows(2) {
                    assert!(w[0] >= w[1]);
                }
                // Deterministic: a second call yields the same split.
                assert_eq!(sizes, split_sizes(n, nt));
            }
        }
    }

    #[test]
    fn map_items_matches_sequential_for_any_thread_count() {
        // Forced multi-threaded execution on a single-core box: the
        // internal helper takes `nt` explicitly, so this exercises the
        // scoped-thread path even when `available_parallelism() == 1`.
        let items: Vec<f64> = (0..101).map(|i| (i as f64).sin()).collect();
        let f = |x: f64| x.mul_add(3.0, 1.0) / (1.0 + x * x);
        let seq: Vec<f64> = items.iter().map(|&x| f(x)).collect();
        for nt in [1usize, 2, 3, 4, 7] {
            let got = map_items(items.clone(), nt, &|x| f(x));
            assert_eq!(got.len(), seq.len(), "nt={nt}");
            for (g, s) in got.iter().zip(seq.iter()) {
                assert_eq!(g.to_bits(), s.to_bits(), "nt={nt}");
            }
        }
    }

    #[test]
    fn run_items_visits_each_mut_chunk_exactly_once() {
        let seq = {
            let mut buf = vec![0.0f64; 23];
            for (j, c) in buf.chunks_mut(4).enumerate() {
                for (t, v) in c.iter_mut().enumerate() {
                    *v += (j * 10 + t) as f64;
                }
            }
            buf
        };
        for nt in [1usize, 2, 4] {
            let mut buf = vec![0.0f64; 23];
            let chunks: Vec<(usize, &mut [f64])> = buf.chunks_mut(4).enumerate().collect();
            run_items(chunks, nt, &|(j, c)| {
                for (t, v) in c.iter_mut().enumerate() {
                    *v += (j * 10 + t) as f64;
                }
            });
            assert_eq!(buf, seq, "nt={nt}");
        }
    }
}
